"""Tests for the topology -> dataflow adapter (grey-box extraction)."""

from __future__ import annotations

import pytest

from repro.apps.wordcount import analyze_wordcount, build_wordcount_topology
from repro.core import LabelKind, analyze, choose_strategies, SealStrategy, OrderStrategy
from repro.errors import StormError
from repro.storm import Bolt, Fields, Spout, TopologyBuilder, topology_to_dataflow


def test_wordcount_extraction_matches_manual_dataflow():
    result = analyze_wordcount(sealed=False)
    assert result.label_of("Commit->sink").kind is LabelKind.RUN
    plan = choose_strategies(result)
    assert isinstance(plan.strategy_for("Count"), OrderStrategy)


def test_sealed_extraction_is_consistent():
    result = analyze_wordcount(sealed=True)
    assert result.label_of("Commit->sink").kind is LabelKind.ASYNC
    plan = choose_strategies(result)
    assert isinstance(plan.strategy_for("Count"), SealStrategy)


def test_unannotated_bolt_rejected():
    class Bare(Bolt):
        output_fields = Fields("x")

        def execute(self, tup, emit):
            pass

    class Src(Spout):
        output_fields = Fields("x")

        def next_batch(self, batch_id):
            return None

    builder = TopologyBuilder("bare")
    builder.set_spout("src", Src)
    builder.set_bolt("b", Bare).shuffle_grouping("src")
    with pytest.raises(StormError):
        topology_to_dataflow(builder.build())


def test_stream_names_follow_wiring():
    topology = build_wordcount_topology(workers=2)
    dataflow = topology_to_dataflow(topology)
    names = {s.name for s in dataflow.streams}
    assert names == {
        "tweets->Splitter",
        "Splitter->Count",
        "Count->Commit",
        "Commit->sink",
    }
