"""Unit tests for the single-node Bloom timestep runtime."""

from __future__ import annotations

import pytest

from repro.bloom.module import BloomModule
from repro.bloom.runtime import BloomRuntime
from repro.errors import BloomError


class PathModule(BloomModule):
    """Transitive closure: a classic fixpoint program."""

    def setup(self):
        self.input_interface("edge", ["src", "dst"])
        self.output_interface("reach", ["src", "dst"])
        self.table("link", ["src", "dst"])
        self.table("path", ["src", "dst"])

    def rules(self):
        hop = self.join(
            self.scan("link"),
            self.project(self.scan("path"), [("src", "mid"), ("dst", "far")]),
            on=[("dst", "mid")],
        )
        return [
            self.rule("link", "<=", self.scan("edge")),
            self.rule("path", "<=", self.scan("link")),
            self.rule("path", "<=", self.project(hop, ["src", ("far", "dst")])),
            self.rule("reach", "<=", self.scan("path")),
        ]


class DeferredModule(BloomModule):
    def setup(self):
        self.input_interface("inp", ["v"])
        self.output_interface("out", ["v"])
        self.table("seen", ["v"])
        self.table("old", ["v"])

    def rules(self):
        return [
            self.rule("seen", "<=", self.scan("inp")),
            self.rule("old", "<+", self.scan("seen")),   # deferred copy
            self.rule("seen", "<-", self.scan("old")),   # delete what aged
            self.rule("out", "<=", self.scan("seen")),
        ]


def test_transitive_closure_reaches_fixpoint_in_one_tick():
    runtime = BloomRuntime(PathModule())
    runtime.insert("edge", [(1, 2), (2, 3), (3, 4)])
    outputs = runtime.tick()
    assert outputs["reach"] == {
        (1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4),
    }


def test_tables_persist_and_scratches_clear():
    runtime = BloomRuntime(PathModule())
    runtime.insert("edge", [(1, 2)])
    runtime.tick()
    # next tick: input interface cleared, table retained
    outputs = runtime.tick()
    assert runtime.read("edge") == frozenset()
    assert runtime.read("link") == {(1, 2)}
    assert outputs["reach"] == {(1, 2)}


def test_incremental_input_extends_closure():
    runtime = BloomRuntime(PathModule())
    runtime.insert("edge", [(1, 2)])
    runtime.tick()
    runtime.insert("edge", [(2, 3)])
    outputs = runtime.tick()
    assert (1, 3) in outputs["reach"]


def test_deferred_and_delete_apply_next_tick():
    runtime = BloomRuntime(DeferredModule())
    runtime.insert("inp", [(1,)])
    out1 = runtime.tick()
    assert out1["out"] == {(1,)}
    # tick 2: old <+ got (1,), so seen loses it at tick 3
    out2 = runtime.tick()
    assert out2["out"] == {(1,)}
    out3 = runtime.tick()
    assert out3["out"] == frozenset()


def test_insert_arity_checked():
    runtime = BloomRuntime(PathModule())
    with pytest.raises(BloomError):
        runtime.insert("edge", [(1, 2, 3)])


def test_insert_into_output_rejected():
    runtime = BloomRuntime(PathModule())
    with pytest.raises(BloomError):
        runtime.insert("reach", [(1, 2)])


def test_async_without_transport_raises():
    class Chatty(BloomModule):
        def setup(self):
            self.input_interface("inp", ["addr", "v"])
            self.channel("chan", ["@addr", "v"])

        def rules(self):
            return [self.rule("chan", "<~", self.scan("inp"))]

    runtime = BloomRuntime(Chatty())
    runtime.insert("inp", [("n1", 7)])
    with pytest.raises(BloomError):
        runtime.tick()


def test_async_rule_hands_tuples_to_transport():
    sent = []

    class Chatty(BloomModule):
        def setup(self):
            self.input_interface("inp", ["addr", "v"])
            self.channel("chan", ["@addr", "v"])

        def rules(self):
            return [self.rule("chan", "<~", self.scan("inp"))]

    runtime = BloomRuntime(
        Chatty(), on_channel_send=lambda chan, addr, row: sent.append((chan, addr, row))
    )
    runtime.insert("inp", [("n1", 7), ("n2", 8)])
    runtime.tick()
    assert sorted(sent) == [("chan", "n1", ("n1", 7)), ("chan", "n2", ("n2", 8))]


def test_has_pending_input_reflects_queues():
    runtime = BloomRuntime(PathModule())
    assert not runtime.has_pending_input
    runtime.insert("edge", [(1, 2)])
    assert runtime.has_pending_input
    runtime.tick()
    assert not runtime.has_pending_input


class ReplaceModule(BloomModule):
    """Defers both an insert and a delete of the same tuple."""

    def setup(self):
        self.input_interface("inp", ["v"])
        self.table("keep", ["v"])
        self.table("t", ["v"])

    def rules(self):
        return [
            self.rule("keep", "<=", self.scan("inp")),
            self.rule("t", "<+", self.scan("keep")),  # re-insert every step
            self.rule("t", "<-", self.scan("keep")),  # and delete it too
        ]


@pytest.mark.parametrize("engine", ["incremental", "naive"])
def test_simultaneous_deferred_insert_and_delete(engine):
    """Bud's boundary order: deletes apply before inserts, insert wins.

    A tuple that is both ``<+``-inserted and ``<-``-deleted at the same
    timestep boundary survives (the delete removes the old copy, the
    insert puts it back) — the semantics the module docstring documents.
    """
    runtime = BloomRuntime(ReplaceModule(), engine=engine)
    runtime.insert("inp", [(1,)])
    runtime.tick()
    assert runtime.read("t") == frozenset()      # nothing pending yet
    runtime.tick()
    assert runtime.read("t") == {(1,)}           # insert+delete: survives
    runtime.tick()
    assert runtime.read("t") == {(1,)}           # and keeps surviving

    # direct pending-queue race, without rules: same outcome
    direct = BloomRuntime(PathModule(), engine=engine)
    direct.insert("edge", [(7, 8)])
    direct._pending_deletes.setdefault("edge", set()).add((7, 8))
    direct.tick()
    assert direct.read("edge") == {(7, 8)}


@pytest.mark.parametrize("engine", ["incremental", "naive"])
def test_deferred_delete_of_still_derivable_row_is_restored(engine):
    """A ``<-`` of a row an instantaneous rule still derives is undone
    by the next tick's fixpoint (the naive engine re-asserts every rule;
    the incremental engine must match)."""

    class Underiveable(BloomModule):
        def setup(self):
            self.input_interface("inp", ["v"])
            self.table("src", ["v"])
            self.table("dst", ["v"])
            self.table("kill", ["v"])

        def rules(self):
            return [
                self.rule("src", "<=", self.scan("inp")),
                self.rule("dst", "<=", self.scan("src")),   # still derivable
                self.rule("kill", "<+", self.scan("src")),
                self.rule("dst", "<-", self.scan("kill")),  # deleted anyway
            ]

    runtime = BloomRuntime(Underiveable(), engine=engine)
    runtime.insert("inp", [(3,)])
    runtime.tick()
    assert runtime.read("dst") == {(3,)}
    for _ in range(3):
        runtime.tick()
        # the boundary delete removes (3,), the fixpoint re-derives it
        assert runtime.read("dst") == {(3,)}


class TableSink(BloomModule):
    """No output interfaces: quiescent state is skippable."""

    def setup(self):
        self.input_interface("inp", ["v"])
        self.table("t", ["v"])

    def rules(self):
        return [self.rule("t", "<=", self.scan("inp"))]


@pytest.mark.parametrize("engine", ["incremental", "naive"])
def test_noop_tick_skipping(engine):
    """Duplicate table inserts are consumed without running a tick."""
    runtime = BloomRuntime(TableSink(), engine=engine)
    runtime.insert("inp", [(1,)])
    assert not runtime.tick_is_noop  # transient input pending
    runtime.tick()
    runtime.tick()  # drain the input interface: every transient empty now
    # a novel row is not skippable
    runtime.insert("t", [(2,)])
    assert not runtime.tick_is_noop
    assert not runtime.skip_noop_tick()
    runtime.tick()
    # re-delivering rows the table already holds is a pure no-op
    runtime.insert("t", [(1,), (2,)])
    assert runtime.tick_is_noop
    assert runtime.skip_noop_tick()
    assert runtime.ticks_skipped == 1
    assert not runtime.has_pending_input
    assert runtime.read("t") == {(1,), (2,)}
    # ...and a subsequent real tick still works
    runtime.insert("t", [(3,)])
    runtime.tick()
    assert runtime.read("t") == {(1,), (2,), (3,)}


def test_noop_tick_never_skipped_with_end_of_step_rules():
    runtime = BloomRuntime(DeferredModule())
    assert not runtime.tick_is_noop  # <+ / <- rules emit every tick
    assert not runtime.skip_noop_tick()
