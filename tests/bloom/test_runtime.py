"""Unit tests for the single-node Bloom timestep runtime."""

from __future__ import annotations

import pytest

from repro.bloom.module import BloomModule
from repro.bloom.runtime import BloomRuntime
from repro.errors import BloomError


class PathModule(BloomModule):
    """Transitive closure: a classic fixpoint program."""

    def setup(self):
        self.input_interface("edge", ["src", "dst"])
        self.output_interface("reach", ["src", "dst"])
        self.table("link", ["src", "dst"])
        self.table("path", ["src", "dst"])

    def rules(self):
        hop = self.join(
            self.scan("link"),
            self.project(self.scan("path"), [("src", "mid"), ("dst", "far")]),
            on=[("dst", "mid")],
        )
        return [
            self.rule("link", "<=", self.scan("edge")),
            self.rule("path", "<=", self.scan("link")),
            self.rule("path", "<=", self.project(hop, ["src", ("far", "dst")])),
            self.rule("reach", "<=", self.scan("path")),
        ]


class DeferredModule(BloomModule):
    def setup(self):
        self.input_interface("inp", ["v"])
        self.output_interface("out", ["v"])
        self.table("seen", ["v"])
        self.table("old", ["v"])

    def rules(self):
        return [
            self.rule("seen", "<=", self.scan("inp")),
            self.rule("old", "<+", self.scan("seen")),   # deferred copy
            self.rule("seen", "<-", self.scan("old")),   # delete what aged
            self.rule("out", "<=", self.scan("seen")),
        ]


def test_transitive_closure_reaches_fixpoint_in_one_tick():
    runtime = BloomRuntime(PathModule())
    runtime.insert("edge", [(1, 2), (2, 3), (3, 4)])
    outputs = runtime.tick()
    assert outputs["reach"] == {
        (1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4),
    }


def test_tables_persist_and_scratches_clear():
    runtime = BloomRuntime(PathModule())
    runtime.insert("edge", [(1, 2)])
    runtime.tick()
    # next tick: input interface cleared, table retained
    outputs = runtime.tick()
    assert runtime.read("edge") == frozenset()
    assert runtime.read("link") == {(1, 2)}
    assert outputs["reach"] == {(1, 2)}


def test_incremental_input_extends_closure():
    runtime = BloomRuntime(PathModule())
    runtime.insert("edge", [(1, 2)])
    runtime.tick()
    runtime.insert("edge", [(2, 3)])
    outputs = runtime.tick()
    assert (1, 3) in outputs["reach"]


def test_deferred_and_delete_apply_next_tick():
    runtime = BloomRuntime(DeferredModule())
    runtime.insert("inp", [(1,)])
    out1 = runtime.tick()
    assert out1["out"] == {(1,)}
    # tick 2: old <+ got (1,), so seen loses it at tick 3
    out2 = runtime.tick()
    assert out2["out"] == {(1,)}
    out3 = runtime.tick()
    assert out3["out"] == frozenset()


def test_insert_arity_checked():
    runtime = BloomRuntime(PathModule())
    with pytest.raises(BloomError):
        runtime.insert("edge", [(1, 2, 3)])


def test_insert_into_output_rejected():
    runtime = BloomRuntime(PathModule())
    with pytest.raises(BloomError):
        runtime.insert("reach", [(1, 2)])


def test_async_without_transport_raises():
    class Chatty(BloomModule):
        def setup(self):
            self.input_interface("inp", ["addr", "v"])
            self.channel("chan", ["@addr", "v"])

        def rules(self):
            return [self.rule("chan", "<~", self.scan("inp"))]

    runtime = BloomRuntime(Chatty())
    runtime.insert("inp", [("n1", 7)])
    with pytest.raises(BloomError):
        runtime.tick()


def test_async_rule_hands_tuples_to_transport():
    sent = []

    class Chatty(BloomModule):
        def setup(self):
            self.input_interface("inp", ["addr", "v"])
            self.channel("chan", ["@addr", "v"])

        def rules(self):
            return [self.rule("chan", "<~", self.scan("inp"))]

    runtime = BloomRuntime(
        Chatty(), on_channel_send=lambda chan, addr, row: sent.append((chan, addr, row))
    )
    runtime.insert("inp", [("n1", 7), ("n2", 8)])
    runtime.tick()
    assert sorted(sent) == [("chan", "n1", ("n1", 7)), ("chan", "n2", ("n2", 8))]


def test_has_pending_input_reflects_queues():
    runtime = BloomRuntime(PathModule())
    assert not runtime.has_pending_input
    runtime.insert("edge", [(1, 2)])
    assert runtime.has_pending_input
    runtime.tick()
    assert not runtime.has_pending_input
