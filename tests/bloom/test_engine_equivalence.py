"""Differential tests: the incremental engine against the naive reference.

The semi-naive engine of :mod:`repro.bloom.runtime` claims *exact*
equivalence with the retained naive engine — same fixpoints, same stratum
assignments, same output-interface contents, tick for tick, including the
accumulation artifacts of nonmonotonic rule bodies (intermediate
aggregates that land in persistent targets) and the boundary semantics of
``<+``/``<-``.  These tests check the claim two ways:

* seeded-random *programs*: a generator builds random rule sets over
  every operator (scan/project/calc/select/join/antijoin/groupby/union/
  const, all four merge ops), skips unstratifiable draws, and drives both
  engines through a random multi-tick input schedule;
* hypothesis-random *schedules* over a fixed adversarial module that
  mixes recursion, aggregation, antijoin, deferred copy, and deletion.

Both engines evaluate the *same module instance* on purpose: per-rule
evaluation state must live in the runtime (DeltaContext), never on the
shared AST.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.module import BloomModule
from repro.bloom.runtime import BloomRuntime
from repro.errors import BloomError

VALUES = range(4)


def _pred_even(row) -> bool:
    return row["a"] % 2 == 0


def _pred_le(row) -> bool:
    return row["a"] <= row["b"]


def _calc_sum(a, b) -> int:
    return (a + b) % 7


_PREDICATES = (_pred_even, _pred_le)
_AGGS = ("count", "sum", "min", "max")


class RandomModule(BloomModule):
    """A random arity-2 Bloom program drawn from a seed."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        super().__init__(f"random{seed}")

    def setup(self) -> None:
        self.input_interface("in0", ["a", "b"])
        self.input_interface("in1", ["a", "b"])
        self.table("t0", ["a", "b"])
        self.table("t1", ["a", "b"])
        self.table("t2", ["a", "b"])
        self.scratch("s0", ["a", "b"])
        self.output_interface("out0", ["a", "b"])

    # -- random tree construction --------------------------------------
    def _leaf(self, rng: random.Random):
        if rng.random() < 0.15:
            rows = [
                (rng.choice(VALUES), rng.choice(VALUES))
                for _ in range(rng.randrange(3))
            ]
            return self.const(rows, ["a", "b"])
        return self.scan(
            rng.choice(["in0", "in1", "t0", "t1", "t2", "s0"])
        )

    def _tree(self, rng: random.Random, depth: int):
        if depth <= 0:
            return self._leaf(rng)
        kind = rng.choice(
            ["leaf", "project", "select", "calc", "join", "antijoin",
             "groupby", "union"]
        )
        if kind == "leaf":
            return self._leaf(rng)
        if kind == "project":
            child = self._tree(rng, depth - 1)
            return self.project(child, [("b", "a"), ("a", "b")])
        if kind == "select":
            child = self._tree(rng, depth - 1)
            pred = rng.choice(_PREDICATES)
            return self.select(child, pred, refs=["a", "b"])
        if kind == "calc":
            child = self._tree(rng, depth - 1)
            wide = self.calc(child, "c", _calc_sum, ["a", "b"])
            return self.project(wide, ["a", ("c", "b")])
        if kind == "join":
            left = self._tree(rng, depth - 1)
            right = self.project(
                self._tree(rng, depth - 1), [("a", "x"), ("b", "y")]
            )
            joined = self.join(left, right, on=[("b", "x")])
            return self.project(joined, ["a", ("y", "b")])
        if kind == "antijoin":
            left = self._tree(rng, depth - 1)
            right = self._tree(rng, depth - 1)
            on = rng.choice(([("a", "a")], [("b", "b")], [("a", "b")]))
            return self.notin(left, right, on=on)
        if kind == "groupby":
            child = self._tree(rng, depth - 1)
            agg = rng.choice(_AGGS)
            col = None if agg == "count" else "b"
            # a monotone hint exempts the aggregate from stratification,
            # so recursion through it is legal — only min/max terminate
            # there (they never mint values outside the finite domain;
            # count/sum would grow their own input forever)
            monotone = agg in ("min", "max") and rng.random() < 0.3
            return self.group_by(
                child,
                ["a"],
                [("b", agg, col)],
                monotone=monotone,
            )
        return self.union(self._tree(rng, depth - 1), self._tree(rng, depth - 1))

    def rules(self):
        rng = random.Random(f"program:{self._seed}")
        built = []
        for _ in range(rng.randrange(4, 9)):
            roll = rng.random()
            if roll < 0.7:
                op = "<="
                lhs = rng.choice(["t0", "t1", "t2", "s0", "out0"])
            elif roll < 0.85:
                op = "<+"
                lhs = rng.choice(["t0", "t1", "t2"])
            else:
                op = "<-"
                lhs = rng.choice(["t0", "t1", "t2"])
            built.append(self.rule(lhs, op, self._tree(rng, rng.randrange(1, 4))))
        return built


def _schedule(seed: int, ticks: int = 5) -> list[list[tuple[str, list[tuple]]]]:
    """Random external inserts per tick (interfaces and tables)."""
    rng = random.Random(f"schedule:{seed}")
    plan = []
    for _ in range(ticks):
        step = []
        for collection in ("in0", "in1", "t0"):
            if rng.random() < 0.8:
                rows = [
                    (rng.choice(VALUES), rng.choice(VALUES))
                    for _ in range(rng.randrange(4))
                ]
                if rows:
                    step.append((collection, rows))
        plan.append(step)
    return plan


def _run_differential(module: BloomModule, plan) -> None:
    incremental = BloomRuntime(module, engine="incremental")
    naive = BloomRuntime(module, engine="naive")
    assert incremental.strata() == naive.strata()
    for step in plan:
        for collection, rows in step:
            incremental.insert(collection, rows)
            naive.insert(collection, rows)
        assert incremental.tick() == naive.tick()
        for decl in module.declarations:
            assert incremental.read(decl.name) == naive.read(decl.name), (
                f"{module.name}: {decl.name} diverged"
            )
        assert incremental.has_pending_input == naive.has_pending_input
    # settle: deferred/deletion chains keep mutating state after input
    # stops; both engines must track each other to quiescence (bounded)
    for _ in range(4):
        if not naive.has_pending_input:
            break
        assert incremental.tick() == naive.tick()
        for decl in module.declarations:
            assert incremental.read(decl.name) == naive.read(decl.name)


def test_randomized_programs_and_schedules_are_engine_equivalent():
    """The satellite acceptance: identical fixpoints, strata, outputs."""
    checked = 0
    for seed in range(120):
        module = RandomModule(seed)
        try:
            BloomRuntime(module, engine="naive")
        except BloomError:
            continue  # unstratifiable draw (recursion through negation)
        _run_differential(module, _schedule(seed))
        checked += 1
    # the generator must actually exercise the space, not skip it
    assert checked >= 40, f"only {checked} stratifiable programs generated"


class AdversarialModule(BloomModule):
    """Recursion + aggregation + antijoin + deferred copy + deletion.

    Designed to hit every engine path at once: a transitive closure
    (recursive join) feeding a count aggregate in a higher stratum, an
    antijoin gate over a table that rows are deferred-deleted from, and a
    ``<+``/``<-`` aging pair that keeps state churning across boundaries.
    """

    def setup(self) -> None:
        self.input_interface("edge", ["a", "b"])
        self.table("link", ["a", "b"])
        self.table("path", ["a", "b"])
        self.table("fresh", ["a", "b"])
        self.table("old", ["a", "b"])
        self.output_interface("fan", ["a", "b"])
        self.output_interface("quiet", ["a", "b"])

    def rules(self):
        hop = self.join(
            self.scan("link"),
            self.project(self.scan("path"), [("a", "m"), ("b", "far")]),
            on=[("b", "m")],
        )
        counts = self.group_by(
            self.scan("path"), ["a"], [("b", "count", None)]
        )
        return [
            self.rule("link", "<=", self.scan("edge")),
            self.rule("path", "<=", self.scan("link")),
            self.rule("path", "<=", self.project(hop, ["a", ("far", "b")])),
            self.rule("fan", "<=", counts),
            self.rule("fresh", "<=", self.scan("edge")),
            self.rule("old", "<+", self.scan("fresh")),
            self.rule("fresh", "<-", self.scan("old")),
            self.rule(
                "quiet",
                "<=",
                self.notin(self.scan("link"), self.scan("fresh"), on=[("a", "a")]),
            ),
        ]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)),
            max_size=4,
        ),
        min_size=1,
        max_size=5,
    )
)
def test_adversarial_module_equivalent_under_random_schedules(steps):
    module = AdversarialModule()
    plan = [[("edge", rows)] if rows else [] for rows in steps]
    _run_differential(module, plan)


@pytest.mark.parametrize("engine", ["incremental", "naive"])
def test_engine_selection_is_explicit(engine):
    module = AdversarialModule()
    runtime = BloomRuntime(module, engine=engine)
    assert runtime.engine == engine
    assert engine in repr(runtime)


def test_unknown_engine_rejected():
    with pytest.raises(BloomError):
        BloomRuntime(AdversarialModule(), engine="turbo")
