"""Tests for white-box annotation extraction (paper Section VII)."""

from __future__ import annotations

from repro.apps.queries import (
    CampaignReport,
    PoorReport,
    ThreshReport,
    WindowReport,
)
from repro.bloom.analysis import analyze_module, attach_component
from repro.bloom.catalog import Catalog
from repro.bloom.module import BloomModule
from repro.core.annotations import STAR, AnnotationKind
from repro.core.graph import Dataflow


class TestQueryAnnotations:
    """The Section VI-B1 annotations, derived automatically."""

    def test_thresh_paths_are_confluent(self):
        # requests persist in a table (standing queries), so both paths
        # are stateful; confluence is what matters: no coordination needed
        analysis = analyze_module(ThreshReport())
        assert analysis.annotation_for("request", "response").kind is AnnotationKind.CW
        assert analysis.annotation_for("click", "response").kind is AnnotationKind.CW

    def test_poor_request_path_is_order_sensitive_on_id(self):
        # exactly the paper's hand-written annotation: the standing-query
        # table is a confluent write upstream of the aggregation, so the
        # path stays a Read
        analysis = analyze_module(PoorReport())
        ann = analysis.annotation_for("request", "response")
        assert ann.kind is AnnotationKind.OR
        assert ann.gate == frozenset({"id"})

    def test_window_gate_includes_window(self):
        analysis = analyze_module(WindowReport())
        ann = analysis.annotation_for("request", "response")
        assert ann.gate == frozenset({"id", "window"})

    def test_campaign_gate_includes_campaign(self):
        analysis = analyze_module(CampaignReport())
        ann = analysis.annotation_for("request", "response")
        assert ann.gate == frozenset({"id", "campaign"})

    def test_click_path_is_order_sensitive_read(self):
        # the click log write is a confluent append upstream of the
        # aggregation, so the composed path is OR[gate]; the paper's hand
        # annotation splits this as CW on the write plus OR on the query
        analysis = analyze_module(CampaignReport())
        ann = analysis.annotation_for("click", "response")
        assert ann.kind is AnnotationKind.OR
        assert ann.gate == frozenset({"id", "campaign"})

    def test_spec_annotations_round_trip(self):
        analysis = analyze_module(PoorReport())
        entries = analysis.spec_annotations()
        assert {e["from"] for e in entries} == {"click", "request"}
        request_entry = next(e for e in entries if e["from"] == "request")
        assert request_entry["label"] == "OR"
        assert request_entry["subscript"] == ["id"]


class TestCatalog:
    def test_lineage_traced_through_table(self):
        catalog = Catalog(PoorReport())
        sources = catalog.trace_to_inputs("clicks", "campaign")
        assert sources == {("click", "campaign")}

    def test_output_column_traces_to_both_interfaces(self):
        catalog = Catalog(PoorReport())
        sources = catalog.trace_to_inputs("response", "id")
        # response.id comes from the request side of the join
        assert ("request", "id") in sources

    def test_identity_rename_produces_injective_fd(self):
        class Renamer(BloomModule):
            def setup(self):
                self.input_interface("inp", ["company"])
                self.output_interface("out", ["symbol"])

            def rules(self):
                return [
                    self.rule(
                        "out", "<=", self.project(self.scan("inp"), [("company", "symbol")])
                    )
                ]

        analysis = analyze_module(Renamer())
        assert analysis.fds.injectively_determines({"company"}, {"symbol"})
        assert analysis.fds.injectively_determines({"symbol"}, {"company"})


class TestComposition:
    def test_star_gate_when_keys_are_computed(self):
        class Computed(BloomModule):
            def setup(self):
                self.input_interface("inp", ["a"])
                self.output_interface("out", ["k", "n"])

            def rules(self):
                doubled = self.calc(self.scan("inp"), "k", lambda a: a * 2, ["a"])
                return [
                    self.rule(
                        "out",
                        "<=",
                        self.group_by(doubled, ["k"], [("n", "count", None)]),
                    )
                ]

        analysis = analyze_module(Computed())
        ann = analysis.annotation_for("inp", "out")
        assert ann.kind is AnnotationKind.OR
        assert ann.gate is STAR

    def test_deletion_rule_is_nonmonotonic(self):
        class Deleter(BloomModule):
            def setup(self):
                self.input_interface("inp", ["v"])
                self.output_interface("out", ["v"])
                self.table("store", ["v"])

            def rules(self):
                return [
                    self.rule("store", "<=", self.scan("inp")),
                    self.rule("store", "<-", self.scan("inp")),
                    self.rule("out", "<=", self.scan("store")),
                ]

        analysis = analyze_module(Deleter())
        ann = analysis.annotation_for("inp", "out")
        assert ann.kind is AnnotationKind.OW

    def test_attach_component_builds_dataflow_paths(self):
        dataflow = Dataflow("ad")
        component = attach_component(dataflow, CampaignReport(), rep=True)
        assert component.rep
        assert set(component.input_interfaces) == {"click", "request"}
        assert component.output_interfaces == ("response",)
