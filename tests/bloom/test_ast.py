"""Unit tests for the relational-algebra AST."""

from __future__ import annotations

import pytest

from repro.bloom.ast import (
    AntiJoin,
    Calc,
    Const,
    GroupBy,
    Join,
    Project,
    Scan,
    Select,
    Union,
)
from repro.errors import BloomError

R = Scan("r", ("a", "b"))
S = Scan("s", ("b", "c"))


def env(**collections):
    return {name: frozenset(rows) for name, rows in collections.items()}


class TestEval:
    def test_scan_reads_collection(self):
        e = env(r={(1, 2), (3, 4)})
        assert R.eval(e) == {(1, 2), (3, 4)}
        assert R.eval({}) == frozenset()

    def test_project_identity_and_rename(self):
        node = Project(R, ["b", ("a", "x")])
        assert node.schema == ("b", "x")
        assert node.eval(env(r={(1, 2)})) == {(2, 1)}

    def test_project_unknown_column_rejected(self):
        with pytest.raises(BloomError):
            Project(R, ["nope"])

    def test_project_duplicate_alias_rejected(self):
        with pytest.raises(BloomError):
            Project(R, ["a", ("b", "a")])

    def test_calc_appends_computed_column(self):
        node = Calc(R, "total", lambda a, b: a + b, ["a", "b"])
        assert node.schema == ("a", "b", "total")
        assert node.eval(env(r={(1, 2)})) == {(1, 2, 3)}

    def test_select_filters(self):
        node = Select(R, lambda row: row["a"] > 1, ("a",))
        assert node.eval(env(r={(1, 2), (3, 4)})) == {(3, 4)}

    def test_join_on_shared_column(self):
        node = Join(R, S, on=[("b", "b")])
        assert node.schema == ("a", "b", "c")
        result = node.eval(env(r={(1, 2)}, s={(2, "x"), (3, "y")}))
        assert result == {(1, 2, "x")}

    def test_join_collision_rejected(self):
        with pytest.raises(BloomError):
            Join(R, Scan("t", ("a", "d")), on=[("a", "d")])

    def test_antijoin_keeps_unmatched(self):
        node = AntiJoin(R, S, on=[("b", "b")])
        result = node.eval(env(r={(1, 2), (5, 9)}, s={(2, "x")}))
        assert result == {(5, 9)}
        assert node.theta_columns == ("b",)

    def test_group_by_count_and_sum(self):
        node = GroupBy(R, ["a"], [("n", "count", None), ("total", "sum", "b")])
        result = node.eval(env(r={(1, 2), (1, 3), (2, 10)}))
        assert result == {(1, 2, 5), (2, 1, 10)}

    def test_group_by_min_max_accum(self):
        node = GroupBy(R, ["a"], [("lo", "min", "b"), ("hi", "max", "b"), ("all", "accum", "b")])
        result = node.eval(env(r={(1, 2), (1, 5)}))
        assert result == {(1, 2, 5, frozenset({2, 5}))}

    def test_group_by_unknown_aggregate_rejected(self):
        with pytest.raises(BloomError):
            GroupBy(R, ["a"], [("x", "median", "b")])

    def test_union_of_matching_arity(self):
        node = Union(R, Scan("r2", ("a", "b")))
        result = node.eval(env(r={(1, 2)}, r2={(3, 4)}))
        assert result == {(1, 2), (3, 4)}

    def test_union_arity_mismatch_rejected(self):
        with pytest.raises(BloomError):
            Union(R, Scan("t", ("a",)))

    def test_const_rows(self):
        node = Const([(1,), (2,)], ["k"])
        assert node.eval({}) == {(1,), (2,)}
        with pytest.raises(BloomError):
            Const([(1, 2)], ["k"])


class TestMonotonicity:
    def test_monotone_chain(self):
        node = Project(Select(Join(R, S, on=[("b", "b")]), lambda r: True), ["a"])
        assert node.monotonic

    def test_antijoin_is_nonmonotonic(self):
        node = AntiJoin(R, S, on=[("b", "b")])
        assert not node.monotonic
        assert node.nonmonotonic_ops() == (node,)

    def test_group_by_is_nonmonotonic(self):
        node = GroupBy(R, ["a"], [("n", "count", None)])
        assert not node.monotonic

    def test_monotone_hint_restores_confluence(self):
        node = GroupBy(R, ["a"], [("n", "count", None)], monotone=True)
        assert node.monotonic
        assert node.nonmonotonic_ops() == ()

    def test_nested_nonmonotonicity_propagates(self):
        inner = GroupBy(R, ["a"], [("n", "count", None)])
        outer = Project(inner, ["a"])
        assert not outer.monotonic
        assert outer.nonmonotonic_ops() == (inner,)


class TestLineage:
    def test_scan_lineage_is_identity(self):
        assert R.lineage()["a"] == {("r", "a")}

    def test_projection_preserves_identity_through_rename(self):
        node = Project(R, [("a", "x")])
        assert node.lineage()["x"] == {("r", "a")}

    def test_calc_breaks_lineage(self):
        node = Calc(R, "t", lambda a: a, ["a"])
        assert node.lineage()["t"] == frozenset()

    def test_group_by_keys_keep_lineage_but_aggs_do_not(self):
        node = GroupBy(R, ["a"], [("n", "count", None)])
        lineage = node.lineage()
        assert lineage["a"] == {("r", "a")}
        assert lineage["n"] == frozenset()

    def test_join_lineage_from_both_sides(self):
        node = Join(R, S, on=[("b", "b")])
        lineage = node.lineage()
        assert lineage["a"] == {("r", "a")}
        assert lineage["c"] == {("s", "c")}

    def test_union_lineage_intersects_branches(self):
        # same column name, different source collections -> no shared identity
        node = Union(R, Scan("r2", ("a", "b")))
        assert node.lineage()["a"] == frozenset()

    def test_scans_collects_all_collections(self):
        node = Join(R, AntiJoin(S, Scan("t", ("c",)), on=[("c", "c")]), on=[("b", "b")])
        assert node.scans() == {"r", "s", "t"}
