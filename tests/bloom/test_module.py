"""Tests for module declaration, collections, and rule validation."""

from __future__ import annotations

import pytest

from repro.bloom.collections import CollectionDecl, CollectionKind
from repro.bloom.module import BloomModule
from repro.bloom.rules import Rule
from repro.bloom.runtime import BloomRuntime
from repro.errors import BloomError


class TestCollectionDecl:
    def test_kinds_and_persistence(self):
        table = CollectionDecl("t", CollectionKind.TABLE, ("a",))
        scratch = CollectionDecl("s", CollectionKind.SCRATCH, ("a",))
        assert table.persistent and not table.transient
        assert scratch.transient

    def test_channel_requires_location_specifier(self):
        with pytest.raises(BloomError):
            CollectionDecl("c", CollectionKind.CHANNEL, ("addr", "v"))
        chan = CollectionDecl("c", CollectionKind.CHANNEL, ("@addr", "v"))
        assert chan.address_column == "addr"
        assert chan.columns == ("addr", "v")

    def test_schema_validation(self):
        with pytest.raises(BloomError):
            CollectionDecl("x", CollectionKind.TABLE, ())
        with pytest.raises(BloomError):
            CollectionDecl("x", CollectionKind.TABLE, ("a", "a"))
        with pytest.raises(BloomError):
            CollectionDecl("", CollectionKind.TABLE, ("a",))

    def test_arity_check(self):
        decl = CollectionDecl("t", CollectionKind.TABLE, ("a", "b"))
        assert decl.check_arity([1, 2]) == (1, 2)
        with pytest.raises(BloomError):
            decl.check_arity((1,))


class TestRule:
    def test_operator_classification(self):
        from repro.bloom.ast import Scan

        scan = Scan("x", ("a",))
        assert Rule("y", "<=", scan).instantaneous
        assert Rule("y", "<+", scan).deferred
        assert Rule("y", "<-", scan).deletion
        assert Rule("y", "<~", scan).asynchronous

    def test_unknown_operator_rejected(self):
        from repro.bloom.ast import Scan

        with pytest.raises(BloomError):
            Rule("y", "<<", Scan("x", ("a",)))

    def test_deletion_is_nonmonotonic(self):
        from repro.bloom.ast import Scan

        assert not Rule("y", "<-", Scan("x", ("a",))).monotonic
        assert Rule("y", "<=", Scan("x", ("a",))).monotonic


class TestModuleValidation:
    def test_duplicate_collection_rejected(self):
        class Dup(BloomModule):
            def setup(self):
                self.table("t", ["a"])
                self.table("t", ["b"])

            def rules(self):
                return []

        with pytest.raises(BloomError):
            Dup()

    def test_arity_mismatch_in_rule_rejected(self):
        class Mismatch(BloomModule):
            def setup(self):
                self.input_interface("i", ["a", "b"])
                self.table("t", ["a"])

            def rules(self):
                return [self.rule("t", "<=", self.scan("i"))]

        with pytest.raises(BloomError):
            Mismatch()

    def test_writing_input_interface_rejected(self):
        class WritesInput(BloomModule):
            def setup(self):
                self.input_interface("i", ["a"])
                self.table("t", ["a"])

            def rules(self):
                return [self.rule("i", "<=", self.scan("t"))]

        with pytest.raises(BloomError):
            WritesInput()

    def test_reading_output_interface_rejected(self):
        class ReadsOutput(BloomModule):
            def setup(self):
                self.output_interface("o", ["a"])
                self.table("t", ["a"])

            def rules(self):
                return [self.rule("t", "<=", self.scan("o"))]

        with pytest.raises(BloomError):
            ReadsOutput()

    def test_unknown_collection_rejected(self):
        class Unknown(BloomModule):
            def setup(self):
                self.table("t", ["a"])

            def rules(self):
                return [self.rule("ghost", "<=", self.scan("t"))]

        with pytest.raises(BloomError):
            Unknown()


class TestStratification:
    def test_unstratifiable_program_rejected(self):
        class NegativeCycle(BloomModule):
            def setup(self):
                self.input_interface("i", ["a"])
                self.table("t", ["a"])
                self.table("u", ["a"])

            def rules(self):
                return [
                    self.rule("t", "<=", self.notin(
                        self.scan("i"), self.scan("u"), on=[("a", "a")]
                    )),
                    self.rule("u", "<=", self.scan("t")),
                ]

        with pytest.raises(BloomError):
            BloomRuntime(NegativeCycle())

    def test_aggregate_sees_complete_lower_stratum(self):
        class CountAfterClosure(BloomModule):
            """Counts the transitive closure, not a partial prefix."""

            def setup(self):
                self.input_interface("edge", ["s", "d"])
                self.output_interface("total", ["n"])
                self.table("path", ["s", "d"])

            def rules(self):
                hop = self.join(
                    self.scan("path"),
                    self.project(self.scan("path"), [("s", "m"), ("d", "far")]),
                    on=[("d", "m")],
                )
                return [
                    self.rule("path", "<=", self.scan("edge")),
                    self.rule("path", "<=", self.project(hop, ["s", ("far", "d")])),
                    self.rule(
                        "total",
                        "<=",
                        self.project(
                            self.group_by(
                                self.calc(self.scan("path"), "one", lambda s: 1, ["s"]),
                                ["one"],
                                [("n", "count", None)],
                            ),
                            ["n"],
                        ),
                    ),
                ]

        runtime = BloomRuntime(CountAfterClosure())
        runtime.insert("edge", [(1, 2), (2, 3)])
        outputs = runtime.tick()
        # closure is {(1,2),(2,3),(1,3)}: count = 3, not a partial count
        assert outputs["total"] == {(3,)}
