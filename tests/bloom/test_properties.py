"""Property-based tests for Bloom evaluation semantics.

The central invariant is the CALM intuition the paper builds on: a
*monotonic* program produces the same outputs for every partition and
arrival order of its inputs (confluence), while the runtime itself must be
deterministic given an input schedule.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.queries import make_report_module
from repro.bloom.module import BloomModule
from repro.bloom.runtime import BloomRuntime


class Closure(BloomModule):
    """Monotonic: transitive closure over an edge stream."""

    def setup(self):
        self.input_interface("edge", ["s", "d"])
        self.output_interface("reach", ["s", "d"])
        self.table("path", ["s", "d"])

    def rules(self):
        hop = self.join(
            self.scan("path"),
            self.project(self.scan("path"), [("s", "m"), ("d", "far")]),
            on=[("d", "m")],
        )
        return [
            self.rule("path", "<=", self.scan("edge")),
            self.rule("path", "<=", self.project(hop, ["s", ("far", "d")])),
            self.rule("reach", "<=", self.scan("path")),
        ]


edges = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=0, max_size=15
)


def run_in_batches(module_factory, rows, splits, output):
    runtime = BloomRuntime(module_factory())
    start = 0
    final = frozenset()
    boundaries = sorted(set(splits)) + [len(rows)]
    for boundary in boundaries:
        chunk = rows[start:boundary]
        start = boundary
        runtime.insert("edge", chunk)
        final = runtime.tick()[output]
    # one extra settling tick so late table state is reflected
    final = runtime.tick()[output]
    return final


class TestConfluence:
    @settings(max_examples=40)
    @given(edges, st.permutations(list(range(15))))
    def test_monotonic_program_is_order_insensitive(self, rows, order):
        """Any input order yields the same final closure."""
        reference = run_in_batches(Closure, rows, [], "reach")
        permuted = [rows[i] for i in order if i < len(rows)]
        shuffled = run_in_batches(Closure, permuted, [], "reach")
        assert reference == shuffled

    @settings(max_examples=40)
    @given(edges, st.lists(st.integers(0, 15), max_size=4))
    def test_monotonic_program_is_batching_insensitive(self, rows, splits):
        """Any partitioning into timesteps yields the same final closure."""
        reference = run_in_batches(Closure, rows, [], "reach")
        chunked = run_in_batches(Closure, rows, splits, "reach")
        assert reference == chunked

    @settings(max_examples=30)
    @given(edges)
    def test_outputs_grow_monotonically_across_ticks(self, rows):
        runtime = BloomRuntime(Closure())
        seen = frozenset()
        for row in rows:
            runtime.insert("edge", [row])
            out = runtime.tick()["reach"]
            assert seen <= out
            seen = out


clicks = st.lists(
    st.tuples(
        st.sampled_from(["c1", "c2"]),
        st.integers(0, 1),
        st.sampled_from(["ad1", "ad2", "ad3"]),
        st.integers(0, 50),
    ),
    min_size=0,
    max_size=25,
)


class TestQueryConfluence:
    @settings(max_examples=30)
    @given(clicks, st.lists(st.integers(0, 25), max_size=3))
    def test_thresh_is_confluent_under_batching(self, rows, splits):
        """THRESH (monotone aggregate) gives batching-insensitive answers."""

        def run(split_points):
            runtime = BloomRuntime(make_report_module("THRESH", threshold=2))
            runtime.insert("request", [("q", "ad1"), ("q", "ad2"), ("q", "ad3")])
            start = 0
            for boundary in sorted(set(split_points)) + [len(rows)]:
                runtime.insert("click", rows[start:boundary])
                start = boundary
                runtime.tick()
            return runtime.tick()["response"]

        assert run([]) == run(splits)

    @settings(max_examples=30)
    @given(clicks)
    def test_campaign_complete_partitions_are_order_insensitive(self, rows):
        """Evaluating CAMPAIGN over complete partitions (what the seal
        protocol guarantees) yields one deterministic answer set."""

        def run(ordering):
            runtime = BloomRuntime(make_report_module("CAMPAIGN", threshold=3))
            runtime.insert("request", [("q", "ad1"), ("q", "ad2")])
            runtime.insert("click", ordering)
            runtime.tick()
            return runtime.tick()["response"]

        assert run(rows) == run(list(reversed(rows)))


class TestRuntimeDeterminism:
    @settings(max_examples=20)
    @given(edges)
    def test_identical_schedules_identical_states(self, rows):
        a = BloomRuntime(Closure())
        b = BloomRuntime(Closure())
        for row in rows:
            a.insert("edge", [row])
            b.insert("edge", [row])
            assert a.tick() == b.tick()
        assert a.read("path") == b.read("path")
