"""Tests for distributed Bloom: nodes, channels, and delivery policies."""

from __future__ import annotations

import pytest

from repro.bloom.cluster import INSERT_MSG, BloomCluster
from repro.bloom.module import BloomModule
from repro.bloom.rewrite import (
    OrderedInputAdapter,
    OrderedInputPublisher,
    SealedInputAdapter,
)
from repro.coord.sealing import SealedStreamProducer
from repro.coord.zookeeper import install_zookeeper
from repro.errors import BloomError
from repro.sim.network import Process


class Pinger(BloomModule):
    """Forwards everything it hears to a peer, once (echo suppressed)."""

    def setup(self):
        self.input_interface("start", ["addr", "v"])
        self.channel("ping", ["@addr", "v"])
        self.output_interface("heard", ["v"])
        self.table("log", ["v"])

    def rules(self):
        return [
            self.rule("ping", "<~", self.scan("start")),
            self.rule("log", "<=", self.project(self.scan("ping"), ["v"])),
            self.rule("heard", "<=", self.scan("log")),
        ]


def test_channels_route_between_nodes():
    cluster = BloomCluster(seed=1)
    n1 = cluster.add_node("n1", Pinger())
    n2 = cluster.add_node("n2", Pinger())
    n1.insert("start", [("n2", "hello"), ("n2", "again")])
    cluster.run()
    assert n2.output_history("heard") == {("hello",), ("again",)}
    assert n1.output_history("heard") == frozenset()


def test_insert_message_kind():
    cluster = BloomCluster(seed=1)
    node = cluster.add_node("n1", Pinger())

    class Driver(Process):
        def recv(self, msg):
            pass

        def on_start(self):
            self.send("n1", INSERT_MSG, ("start", [("n1", "x")]))

    cluster.network.register(Driver("driver"))
    cluster.run()
    assert node.output_history("heard") == {("x",)}


def test_unknown_message_kind_raises():
    cluster = BloomCluster(seed=1)
    cluster.add_node("n1", Pinger())

    class Rogue(Process):
        def recv(self, msg):
            pass

        def on_start(self):
            self.send("n1", "mystery", None)

    cluster.network.register(Rogue("rogue"))
    with pytest.raises(BloomError):
        cluster.run()


def test_node_lookup():
    cluster = BloomCluster()
    node = cluster.add_node("n1", Pinger())
    assert cluster.node("n1") is node
    assert cluster.nodes == (node,)
    with pytest.raises(BloomError):
        cluster.node("ghost")


class Accumulator(BloomModule):
    def setup(self):
        self.input_interface("inp", ["v"])
        self.output_interface("out", ["v"])
        self.table("store", ["v"])

    def rules(self):
        return [
            self.rule("store", "<=", self.scan("inp")),
            self.rule("out", "<=", self.scan("store")),
        ]


def test_ordered_adapter_applies_identical_sequences():
    cluster = BloomCluster(seed=5)
    zk = install_zookeeper(cluster.network)
    nodes = [cluster.add_node(f"r{i}", Accumulator()) for i in range(3)]
    adapters = []
    for node in nodes:
        adapters.append(OrderedInputAdapter(node, "ops"))
        zk.subscribe("ops", node.name)

    class Producer(Process):
        def __init__(self, name):
            super().__init__(name)
            self.pub = OrderedInputPublisher(self, "ops")

        def recv(self, msg):
            self.pub.handle(msg)

        def on_start(self):
            for i in range(10):
                self.pub.publish("inp", (f"{self.name}-{i}",))

    for p in range(2):
        cluster.network.register(Producer(f"p{p}"))
    cluster.run()
    stores = [node.read("store") for node in nodes]
    assert stores[0] == stores[1] == stores[2]
    assert len(stores[0]) == 20
    assert all(adapter.applied == 20 for adapter in adapters)


def test_sealed_adapter_buffers_until_punctuated():
    cluster = BloomCluster(seed=5)
    node = cluster.add_node("r0", Accumulator())
    SealedInputAdapter(
        node, "s", "inp", producers_for=lambda partition: frozenset({"p0"})
    )

    class Producer(Process):
        def __init__(self, name):
            super().__init__(name)
            self.out = SealedStreamProducer(self, "s")

        def recv(self, msg):
            pass

        def on_start(self):
            self.out.send_record("r0", "k1", ("a",))
            self.out.send_record("r0", "k2", ("b",))
            self.out.seal("r0", "k1")

    cluster.network.register(Producer("p0"))
    cluster.run()
    # only the sealed partition became visible
    assert node.read("store") == {("a",)}


def test_apply_strategy_dispatch():
    from repro.core.strategy import NoCoordination, OrderStrategy, SealStrategy
    from repro.bloom.rewrite import apply_strategy

    cluster = BloomCluster(seed=0)
    node = cluster.add_node("n", Accumulator())
    assert apply_strategy(node, NoCoordination("n")) is None
    adapter = apply_strategy(node, OrderStrategy("n", ("inp",), "test"))
    assert isinstance(adapter, OrderedInputAdapter)
    seal = apply_strategy(
        node,
        SealStrategy("n", (("s", frozenset({"k"})),), (frozenset({"k"}),)),
        stream_collections={"s": "inp"},
        producers_for=lambda partition: frozenset({"p0"}),
    )
    assert isinstance(seal, SealedInputAdapter)
    with pytest.raises(BloomError):
        apply_strategy(
            node,
            SealStrategy("n", (("s", frozenset({"k"})),), (frozenset({"k"}),)),
        )


class SinkModule(BloomModule):
    """A bare table sink: quiescent ticks are skippable."""

    def setup(self):
        self.input_interface("inp", ["v"])
        self.table("t", ["v"])

    def rules(self):
        return [self.rule("t", "<=", self.scan("inp"))]


def test_duplicate_delivery_skips_the_tick():
    """The quiescence fast path: redundant input never re-runs the fixpoint."""
    cluster = BloomCluster(seed=3)
    node = cluster.add_node("sink", SinkModule())

    class Feeder(Process):
        def on_start(self):
            # the same table row three times; only the first changes state
            for delay in (0.01, 0.05, 0.09):
                self.after(delay, lambda: self.send("sink", INSERT_MSG, ("t", [(1,)])))

        def recv(self, msg):  # pragma: no cover - nothing answers
            raise AssertionError(msg)

    cluster.network.register(Feeder("feeder"))
    cluster.run()
    assert node.read("t") == {(1,)}
    assert node.ticks_skipped >= 1
    assert node.runtime.tick_count + node.runtime.ticks_skipped >= 3
