"""Tests for the ``blazes`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

SPEC = """
name: wc
components:
  Splitter:
    annotations: [{ from: tweets, to: words, label: CR }]
  Count:
    annotations:
      - { from: words, to: counts, label: OW, subscript: [word, batch] }
  Commit:
    annotations: [{ from: counts, to: db, label: CW }]
streams:
  - { name: tweets, to: Splitter.tweets%SEAL% }
  - { name: words, from: Splitter.words, to: Count.words }
  - { name: counts, from: Count.counts, to: Commit.counts }
  - { name: db, from: Commit.db }
"""


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Audits cache by default; never let a test write ``.blazes-cache/``
    into the working tree (or hit another test's entries)."""
    monkeypatch.setenv("BLAZES_CACHE_DIR", str(tmp_path / "cell-cache"))


@pytest.fixture
def spec_file(tmp_path):
    def write(sealed: bool):
        seal = ", seal: [batch]" if sealed else ""
        path = tmp_path / "wc.yaml"
        path.write_text(SPEC.replace("%SEAL%", seal))
        return str(path)

    return write


def test_analyze_consistent_spec_exits_zero(spec_file, capsys):
    assert main(["analyze", spec_file(sealed=True)]) == 0
    out = capsys.readouterr().out
    assert "consistent without coordination" in out


def test_analyze_inconsistent_spec_exits_two(spec_file, capsys):
    assert main(["analyze", spec_file(sealed=False)]) == 2
    out = capsys.readouterr().out
    assert "Run" in out


def test_analyze_derivations_flag(spec_file, capsys):
    assert main(["analyze", spec_file(sealed=True), "--derivations"]) == 0
    out = capsys.readouterr().out
    assert "(p)" in out


def test_plan_prints_strategies(spec_file, capsys):
    assert main(["plan", spec_file(sealed=True)]) == 0
    out = capsys.readouterr().out
    assert "seal-based coordination at Count" in out


def test_missing_spec_is_a_clean_error(tmp_path, capsys):
    bad = tmp_path / "broken.yaml"
    bad.write_text("components: {}\nstreams: []")
    assert main(["analyze", str(bad)]) == 1
    assert "error:" in capsys.readouterr().err


def test_lint_clean_spec(spec_file, capsys):
    assert main(["lint", spec_file(sealed=True)]) == 0
    assert "no design-pattern findings" in capsys.readouterr().out


def test_lint_reports_findings(tmp_path, capsys):
    spec = tmp_path / "bad.yaml"
    spec.write_text(
        """
components:
  Agg:
    rep: true
    annotations: [{ from: i, to: o, label: OW, subscript: [k] }]
streams:
  - { name: i, to: Agg.i }
  - { name: o, from: Agg.o }
"""
    )
    assert main(["lint", str(spec)]) == 3
    assert "replicated-nonconfluent" in capsys.readouterr().out


def test_apps_subcommand_lists_registry(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    for name in ("wordcount", "adnet", "kvs"):
        assert name in out
    assert "sealed*" in out  # default strategy marker


def test_apps_subcommand_json(capsys):
    assert main(["apps", "--json"]) == 0
    catalog = json.loads(capsys.readouterr().out)
    by_name = {entry["name"]: entry for entry in catalog}
    assert by_name["wordcount"]["backend"] == "storm"
    assert "eager" in by_name["wordcount"]["strategies"]
    assert by_name["kvs"]["auditable"] is True


def test_analyze_registered_app(capsys):
    assert main(["analyze", "wordcount"]) == 0
    out = capsys.readouterr().out
    assert "consistent without coordination" in out
    assert main(["analyze", "wordcount", "--strategy", "eager"]) == 2


def test_analyze_json_report(capsys):
    assert main(["analyze", "kvs", "--strategy", "uncoordinated", "--json"]) == 2
    report = json.loads(capsys.readouterr().out)
    assert report["consistent"] is False
    assert report["sinks"]["cached"] == "Diverge"
    assert "Store" in report["components_needing_coordination"]


def test_plan_json_report(capsys):
    assert main(["plan", "kvs", "--strategy", "sealed", "--json"]) == 0
    plan = json.loads(capsys.readouterr().out)
    assert plan["uses_global_order"] is False
    seal = next(s for s in plan["strategies"] if s["component"] == "Store")
    assert seal["kind"] == "seal"
    assert seal["partitions"] == [{"stream": "puts", "key": ["key"]}]


def test_strategy_flag_rejected_for_spec_paths(spec_file, capsys):
    assert main(["analyze", spec_file(sealed=True), "--strategy", "x"]) == 1
    assert "registered apps" in capsys.readouterr().err


def test_unknown_target_is_a_clean_error(capsys):
    assert main(["analyze", "no-such-app.yaml"]) == 1
    assert "neither a registered app" in capsys.readouterr().err


def test_run_subcommand(capsys):
    assert main([
        "run", "wordcount", "--smoke", "--set", "total_batches=3",
    ]) == 0
    out = capsys.readouterr().out
    assert "app=wordcount" in out and "strategy=sealed" in out
    assert "batches_acked" in out and ": 3" in out


def test_run_subcommand_json(capsys):
    assert main([
        "run", "adnet", "--strategy", "independent-seal", "--smoke", "--json",
    ]) == 0
    outcome = json.loads(capsys.readouterr().out)
    assert outcome["app"] == "adnet"
    assert outcome["metrics"]["processed"] == outcome["metrics"]["total_entries"]
    assert outcome["metrics"]["replicas_agree"] is True


def test_run_unknown_app_is_a_clean_error(capsys):
    assert main(["run", "nope"]) == 1
    assert "unknown app" in capsys.readouterr().err


def test_run_bad_override_is_a_clean_error(capsys):
    assert main(["run", "wordcount", "--set", "workers"]) == 1
    assert "KEY=VALUE" in capsys.readouterr().err


def test_run_reserved_override_is_a_clean_error(capsys):
    for key, flag in (("seed", "--seed"), ("smoke", "--smoke"), ("strategy", "--strategy")):
        assert main(["run", "wordcount", "--set", f"{key}=1"]) == 1
        assert flag in capsys.readouterr().err


def test_run_unknown_override_key_is_a_clean_error(capsys):
    assert main(["run", "wordcount", "--smoke", "--set", "bogus=1"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:") and "bogus" in err


def test_analyze_json_includes_derivations_when_asked(capsys):
    assert main(["analyze", "wordcount", "--json", "--derivations"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert "Count.counts" in report["derivations"]
    assert main(["analyze", "wordcount", "--json"]) == 0
    assert "derivations" not in json.loads(capsys.readouterr().out)


def test_audit_subcommand(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    assert main([
        "audit", "--smoke", "--apps", "kvs", "--seeds", "7", "11",
    ]) == 0
    out = capsys.readouterr().out
    assert "kvs/uncoordinated/baseline" in out
    assert "sound: all" in out
    assert "Diverge" in out
    report = (tmp_path / "BENCH_audit-smoke.json").read_text()
    assert "observed_severity" in report


def test_audit_subcommand_no_report(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    assert main([
        "audit", "--smoke", "--apps", "wordcount", "--seeds", "7", "11",
        "--no-report", "--evidence",
    ]) == 0
    out = capsys.readouterr().out
    assert "wordcount/eager" in out
    assert "across seeds" in out  # evidence lines printed
    assert not list(tmp_path.glob("BENCH_*"))  # --no-report wrote nothing


def test_audit_matrix_subcommand(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    assert main(["audit", "--matrix", "--smoke", "--seeds", "7", "11"]) == 0
    out = capsys.readouterr().out
    assert "matrix matches Figure 6" in out
    assert "q-thresh/uncoordinated/baseline" in out
    assert "tightness:" in out
    report = (tmp_path / "BENCH_fig6-matrix-smoke.json").read_text()
    assert "consistent" in report


def test_audit_matrix_rejects_apps_flag(capsys):
    assert main(["audit", "--matrix", "--apps", "kvs"]) == 1
    assert "--matrix" in capsys.readouterr().err


def test_audit_json_reports_summary(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    assert main([
        "audit", "--smoke", "--apps", "kvs", "--seeds", "7",
        "--no-report", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["sound"] is True
    assert {"tight_cells", "tightness", "anomalies"} <= set(payload["summary"])
    assert all("predicted" in cell for cell in payload["cells"])


def test_plan_uses_the_apps_ordered_plan(capsys):
    assert main(["plan", "q-poor", "--strategy", "ordered", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    kinds = {s["component"]: s["kind"] for s in payload["strategies"]}
    assert kinds == {"Report": "ordered", "Cache": "none"}
    assert payload["uses_global_order"] is True
    assert main(["plan", "q-poor", "--strategy", "sealed", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    kinds = {s["component"]: s["kind"] for s in payload["strategies"]}
    assert kinds["Report"] == "seal"


def test_parser_rejects_unknown_strategy():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["adreport", "--strategy", "chaos"])


def test_version_flag():
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["--version"])
    assert excinfo.value.code == 0


def test_run_profile_flag_prints_snapshot(capsys):
    assert main(["run", "wordcount", "--strategy", "eager", "--smoke", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "profile:" in out and "events/second" in out
    assert "coordination: " in out


def test_run_profile_json_embeds_blocks(capsys):
    assert main([
        "run", "adnet", "--strategy", "seal", "--smoke", "--profile", "--json",
    ]) == 0
    outcome = json.loads(capsys.readouterr().out)
    assert outcome["metrics"]["coordcost"]["coordination_share"] > 0
    assert outcome["metrics"]["profile"]["events"] > 0


def test_run_rundir_writes_and_validates(tmp_path, capsys):
    from repro.obs.rundir import validate_rundir

    rundir = tmp_path / "run"
    assert main([
        "run", "kvs", "--strategy", "ordered", "--smoke", "--rundir", str(rundir),
    ]) == 0
    assert str(rundir) in capsys.readouterr().err
    info = validate_rundir(rundir)
    assert info["meta"]["app"] == "kvs"
    assert info["coordcost"]["coordination_share"] > 0
    assert info["rows"]["spans.jsonl"] > 0


def test_stats_subcommand_covers_every_strategy(capsys):
    from repro.api import get_app

    assert main(["stats", "adnet", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "coordination cost" in out
    for strategy in get_app("adnet").strategies:
        assert strategy in out


def test_stats_subcommand_json(capsys):
    assert main(["stats", "wordcount", "--smoke", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["app"] == "wordcount"
    # the eager storm topology coordinates nothing
    assert payload["coordcost"]["eager"]["coordination_share"] == 0.0
    assert payload["coordcost"]["transactional"]["coordination_share"] > 0.0


def test_stats_unknown_strategy_is_a_clean_error(capsys):
    assert main(["stats", "adnet", "--strategy", "nope"]) == 1
    assert "unknown strategy" in capsys.readouterr().err


def test_trace_subcommand_lists_lineages(capsys):
    assert main(["trace", "kvs", "--strategy", "ordered", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "lineages" in out and "topic:kvs.inputs" in out


def test_trace_subcommand_timeline_and_json(capsys):
    assert main([
        "trace", "kvs", "--strategy", "ordered", "--smoke",
        "--id", "topic:kvs.inputs", "--limit", "6",
    ]) == 0
    out = capsys.readouterr().out
    assert "timeline topic:kvs.inputs" in out and "elided" in out
    assert main([
        "trace", "kvs", "--strategy", "ordered", "--smoke",
        "--id", "topic:kvs.inputs", "--json",
    ]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert rows and all(row["lineage"] == "topic:kvs.inputs" for row in rows)


def test_trace_unknown_lineage_suggests_known_ids(capsys):
    assert main([
        "trace", "kvs", "--strategy", "ordered", "--smoke", "--id", "batch:999",
    ]) == 0
    out = capsys.readouterr().out
    assert "no span events for 'batch:999'" in out
    assert "known lineages" in out


AUDIT_ARGS = [
    "audit", "--smoke", "--apps", "wordcount", "--seeds", "7",
    "--no-report", "--json",
]


def _audit_payload(capsys, *extra):
    assert main(AUDIT_ARGS + list(extra)) == 0
    return json.loads(capsys.readouterr().out)


def test_audit_caches_cells_across_invocations(capsys):
    cold = _audit_payload(capsys)
    assert cold["engine"]["cache_enabled"] is True
    assert cold["engine"]["cache_hits"] == 0
    assert cold["engine"]["cache_misses"] == cold["engine"]["cells"]
    warm = _audit_payload(capsys)
    assert warm["engine"]["cache_hits"] == warm["engine"]["cells"]
    assert warm["engine"]["computed"] == 0
    # same cells, same verdicts: only the engine accounting may differ
    cold.pop("engine"), warm.pop("engine")
    assert cold == warm


def test_audit_no_cache_flag_computes_everything(capsys):
    _audit_payload(capsys)  # populate the cache...
    payload = _audit_payload(capsys, "--no-cache")  # ...then bypass it
    assert payload["engine"]["cache_enabled"] is False
    assert payload["engine"]["computed"] == payload["engine"]["cells"]


def test_audit_jobs_flag_is_byte_identical_to_serial(capsys):
    from repro.exec import shutdown_shared_pool

    try:
        serial = _audit_payload(capsys, "--no-cache")
        pooled = _audit_payload(capsys, "--no-cache", "--jobs", "2")
    finally:
        shutdown_shared_pool()
    assert pooled["engine"]["jobs"] == 2
    assert pooled["engine"]["pool"]["tasks"] == pooled["engine"]["cells"]
    serial.pop("engine"), pooled.pop("engine")
    assert serial == pooled


def test_audit_text_mode_prints_engine_line(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    assert main([
        "audit", "--smoke", "--apps", "wordcount", "--seeds", "7", "--no-report",
    ]) == 0
    out = capsys.readouterr().out
    assert "engine:" in out and "cache" in out


def test_audit_bad_jobs_is_a_clean_error(capsys):
    assert main(AUDIT_ARGS + ["--jobs", "0"]) == 1
    assert "jobs" in capsys.readouterr().err


def test_cache_subcommand_stats_and_clear(capsys):
    _audit_payload(capsys)  # populate
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "cached cells" in out and "lifetime" in out
    assert main(["cache", "stats", "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] > 0
    assert stats["engine"]["totals"]["runs"] >= 1
    assert main(["cache", "clear"]) == 0
    assert "cleared" in capsys.readouterr().out
    assert main(["cache", "stats", "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["entries"] == 0


def test_stats_engine_reports_cumulative_counters(capsys):
    assert main(["stats", "--engine"]) == 0
    assert "no engine runs recorded" in capsys.readouterr().out
    _audit_payload(capsys)
    assert main(["stats", "--engine"]) == 0
    out = capsys.readouterr().out
    assert "evaluation engine — cumulative" in out
    assert "cache misses" in out
    assert main(["stats", "--engine", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["totals"]["runs"] >= 1


def test_stats_without_app_or_engine_is_a_clean_error(capsys):
    assert main(["stats"]) == 1
    assert "--engine" in capsys.readouterr().err
