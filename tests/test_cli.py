"""Tests for the ``blazes`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

SPEC = """
name: wc
components:
  Splitter:
    annotations: [{ from: tweets, to: words, label: CR }]
  Count:
    annotations:
      - { from: words, to: counts, label: OW, subscript: [word, batch] }
  Commit:
    annotations: [{ from: counts, to: db, label: CW }]
streams:
  - { name: tweets, to: Splitter.tweets%SEAL% }
  - { name: words, from: Splitter.words, to: Count.words }
  - { name: counts, from: Count.counts, to: Commit.counts }
  - { name: db, from: Commit.db }
"""


@pytest.fixture
def spec_file(tmp_path):
    def write(sealed: bool):
        seal = ", seal: [batch]" if sealed else ""
        path = tmp_path / "wc.yaml"
        path.write_text(SPEC.replace("%SEAL%", seal))
        return str(path)

    return write


def test_analyze_consistent_spec_exits_zero(spec_file, capsys):
    assert main(["analyze", spec_file(sealed=True)]) == 0
    out = capsys.readouterr().out
    assert "consistent without coordination" in out


def test_analyze_inconsistent_spec_exits_two(spec_file, capsys):
    assert main(["analyze", spec_file(sealed=False)]) == 2
    out = capsys.readouterr().out
    assert "Run" in out


def test_analyze_derivations_flag(spec_file, capsys):
    assert main(["analyze", spec_file(sealed=True), "--derivations"]) == 0
    out = capsys.readouterr().out
    assert "(p)" in out


def test_plan_prints_strategies(spec_file, capsys):
    assert main(["plan", spec_file(sealed=True)]) == 0
    out = capsys.readouterr().out
    assert "seal-based coordination at Count" in out


def test_missing_spec_is_a_clean_error(tmp_path, capsys):
    bad = tmp_path / "broken.yaml"
    bad.write_text("components: {}\nstreams: []")
    assert main(["analyze", str(bad)]) == 1
    assert "error:" in capsys.readouterr().err


def test_lint_clean_spec(spec_file, capsys):
    assert main(["lint", spec_file(sealed=True)]) == 0
    assert "no design-pattern findings" in capsys.readouterr().out


def test_lint_reports_findings(tmp_path, capsys):
    spec = tmp_path / "bad.yaml"
    spec.write_text(
        """
components:
  Agg:
    rep: true
    annotations: [{ from: i, to: o, label: OW, subscript: [k] }]
streams:
  - { name: i, to: Agg.i }
  - { name: o, from: Agg.o }
"""
    )
    assert main(["lint", str(spec)]) == 3
    assert "replicated-nonconfluent" in capsys.readouterr().out


def test_wordcount_subcommand(capsys):
    assert main([
        "wordcount", "--workers", "2", "--batches", "3", "--batch-size", "10",
    ]) == 0
    out = capsys.readouterr().out
    assert "batches acked : 3" in out
    assert "throughput" in out


def test_adreport_subcommand(capsys):
    assert main([
        "adreport", "--strategy", "independent-seal", "--servers", "2",
        "--entries", "60",
    ]) == 0
    out = capsys.readouterr().out
    assert "records processed : 120" in out
    assert "replicas agree    : True" in out


def test_audit_subcommand(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    assert main([
        "audit", "--smoke", "--apps", "kvs", "--seeds", "7", "11",
    ]) == 0
    out = capsys.readouterr().out
    assert "kvs/uncoordinated/baseline" in out
    assert "sound: all" in out
    assert "Diverge" in out
    report = (tmp_path / "BENCH_audit-smoke.json").read_text()
    assert "observed_severity" in report


def test_audit_subcommand_no_report(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    assert main([
        "audit", "--smoke", "--apps", "wordcount", "--seeds", "7", "11",
        "--no-report", "--evidence",
    ]) == 0
    out = capsys.readouterr().out
    assert "wordcount/eager" in out
    assert "across seeds" in out  # evidence lines printed
    assert not list(tmp_path.iterdir())


def test_parser_rejects_unknown_strategy():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["adreport", "--strategy", "chaos"])


def test_version_flag():
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["--version"])
    assert excinfo.value.code == 0
