"""Unit tests for the wire format: tagged values, codecs, framing."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.errors import SimulationError
from repro.net import frames
from repro.storm.tuples import StormTuple


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        42,
        3.5,
        "text",
        (1, 2, "x"),
        [1, (2, 3), "y"],
        {"plain": {"nested": (1, 2)}},
        {(1, "k"): "tuple-key", 2: "int-key"},
        {"!": "looks-like-a-tag"},
        {1, 2, 3},
        frozenset({("a", 1), ("b", 2)}),
        b"\x00\x01binary",
        ((), ((),), {"deep": [frozenset()]}),
    ],
)
def test_value_roundtrip(value):
    encoded = frames.encode_value(value)
    dumps, loads = frames.make_codec("json")
    assert frames.decode_value(loads(dumps(encoded))) == value


def test_roundtrip_preserves_types():
    value = {"t": (1, 2), "s": {3}, "f": frozenset({4})}
    out = frames.decode_value(frames.encode_value(value))
    assert isinstance(out["t"], tuple)
    assert isinstance(out["s"], set) and not isinstance(out["s"], frozenset)
    assert isinstance(out["f"], frozenset)


def test_storm_tuple_roundtrip():
    tup = StormTuple(("word", 3), batch=7)
    out = frames.decode_value(frames.encode_value(tup))
    assert isinstance(out, StormTuple)
    assert out.values == ("word", 3)
    assert out.batch == 7


def test_json_codec_is_default_and_available():
    assert "json" in frames.available_codecs()


def test_msgpack_codec_is_gated():
    if "msgpack" in frames.available_codecs():
        pytest.skip("msgpack installed in this environment")
    with pytest.raises(SimulationError, match="msgpack"):
        frames.make_codec("msgpack")


def test_unknown_codec_rejected():
    with pytest.raises(SimulationError, match="unknown codec"):
        frames.make_codec("protobuf")


def test_unknown_tag_rejected():
    with pytest.raises(SimulationError, match="unknown frame tag"):
        frames.decode_value({"!": "zz", "v": []})


def test_frame_roundtrip_over_stream():
    dumps, loads = frames.make_codec("json")
    frame = {"src": "a", "dst": "b", "kind": "k", "payload": [1, 2]}
    data = frames.pack_frame(frame, dumps)
    (length,) = struct.unpack(">I", data[:4])
    assert length == len(data) - 4

    async def read_it():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        first = await frames.read_frame(reader, loads)
        second = await frames.read_frame(reader, loads)
        return first, second

    first, second = asyncio.run(read_it())
    assert first == frame
    assert second is None  # clean EOF


def test_oversized_frame_rejected():
    dumps, _ = frames.make_codec("json")
    with pytest.raises(SimulationError, match="exceeds"):
        frames.pack_frame({"blob": "x" * (frames.MAX_FRAME + 1)}, dumps)
