"""Behavior tests for the socket runtime: lifecycle, clock, quiescence."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.net.context import NetConfig, socket_backend
from repro.net.services import NetSimulator, SocketTimeout
from repro.sim.events import make_simulator
from repro.sim.network import LatencyModel, Process, make_network

CFG = NetConfig(time_scale=0.5, poll_interval=0.005)


class Recorder(Process):
    def __init__(self, name):
        super().__init__(name)
        self.got = []

    def recv(self, msg):
        self.got.append((msg.kind, msg.payload))


class Pinger(Recorder):
    def __init__(self, name, dst, count):
        super().__init__(name)
        self.dst = dst
        self.count = count

    def on_start(self):
        for i in range(self.count):
            self.send(self.dst, "ping", i)


def build(config=CFG, **net_kwargs):
    sim = NetSimulator(seed=7, config=config)
    net = make_network(
        sim, latency=LatencyModel(base=0.002, jitter=0.003), **net_kwargs
    )
    return sim, net


def test_make_simulator_respects_socket_scope():
    with socket_backend(CFG):
        assert isinstance(make_simulator(seed=1), NetSimulator)
    assert not isinstance(make_simulator(seed=1), NetSimulator)


def test_run_to_quiescence_delivers_everything():
    sim, net = build()
    a = net.register(Pinger("a", "b", 6))
    b = net.register(Recorder("b"))
    net.start()
    final = sim.run()
    assert [payload for _, payload in b.got] == sorted(
        payload for _, payload in b.got
    ) or len(b.got) == 6  # unreliable kind: all delivered, any order
    assert len(b.got) == 6
    assert net.sent == 6 and net.delivered == 6 and net.dropped == 0
    assert final > 0.0
    assert sim.now == final  # clock frozen at the final virtual time
    assert sim.fired >= 6


def test_prestart_timers_and_wakers_fire():
    sim, net = build()
    a = net.register(Recorder("a"))
    net.register(Recorder("b"))
    fired = []
    sim.schedule(0.01, lambda: fired.append("timer"))
    sim.post(0.02, lambda: a.send("b", "late", "x"))
    waker = sim.waker(0.005, lambda: fired.append("waker"))
    waker.arm()
    net.start()
    sim.run()
    assert "timer" in fired and "waker" in fired
    assert net.process("b").got == [("late", "x")]


def test_cancelled_timer_does_not_fire():
    sim, net = build()
    net.register(Recorder("a"))
    fired = []
    handle = sim.schedule(0.01, lambda: fired.append("no"))
    sim.schedule(0.02, lambda: fired.append("yes"))
    handle.cancel()
    assert sim.pending == 1
    sim.run()
    assert fired == ["yes"]


def test_negative_delay_rejected():
    sim, _ = build()
    with pytest.raises(SimulationError, match="past"):
        sim.schedule(-0.1, lambda: None)
    with pytest.raises(SimulationError, match="past"):
        sim.post(-0.1, lambda: None)


def test_socket_simulator_runs_once():
    sim, net = build()
    net.register(Recorder("a"))
    sim.run()
    with pytest.raises(SimulationError, match="once"):
        sim.run()


def test_callback_exception_propagates():
    sim, net = build()
    net.register(Recorder("a"))

    def boom():
        raise ValueError("from inside the loop")

    sim.schedule(0.005, boom)
    with pytest.raises(ValueError, match="from inside the loop"):
        sim.run()


def test_timeout_raises_with_forensics():
    sim, net = build(
        NetConfig(time_scale=0.5, poll_interval=0.005, timeout=0.05)
    )
    a = net.register(Pinger("a", "b", 2))
    net.register(Recorder("b"))

    # an endless virtual tick loop: the run can never quiesce
    def tick():
        sim.post(0.01, tick)

    sim.post(0.01, tick)
    net.start()
    with pytest.raises(SocketTimeout) as err:
        sim.run()
    assert err.value.timeout == 0.05
    assert err.value.virtual_time > 0.0
    assert err.value.pending >= 1


def test_until_bounds_virtual_time():
    sim, net = build()
    net.register(Recorder("a"))
    fired = []
    sim.schedule(0.01, lambda: fired.append("early"))
    sim.schedule(10.0, lambda: fired.append("far"))  # far beyond the bound
    final = sim.run(until=0.05)
    assert fired == ["early"]
    assert final == 0.05
    assert sim.pending == 1  # the far timer is still pending, as in the DES


def test_reliable_sends_are_exempt_from_loss():
    sim, net = build(drop_prob=1.0, reliable_kinds=("ping",))
    net.register(Pinger("a", "b", 5))
    b = net.register(Recorder("b"))
    net.start()
    sim.run()
    assert len(b.got) == 5
    assert net.dropped == 0


def test_unreliable_sends_can_be_lost():
    sim, net = build(drop_prob=1.0)
    net.register(Pinger("a", "b", 5))
    b = net.register(Recorder("b"))
    net.start()
    sim.run()
    assert b.got == []
    assert net.dropped == 5


def test_transport_summary_in_metrics_shape():
    sim, net = build()
    net.register(Pinger("a", "b", 3))
    net.register(Recorder("b"))
    net.start()
    sim.run()
    summary = net.transport_summary()
    assert summary["codec"] == "json"
    assert summary["nodes"] == 2
    assert summary["frames_sent"] >= 3
