"""CLI surface for the socket backend: run, timeout, audit guards."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _realtime_scale(monkeypatch, tmp_path):
    monkeypatch.setenv("BLAZES_NET_TIME_SCALE", "1.0")
    monkeypatch.setenv("BLAZES_CACHE_DIR", str(tmp_path / "cell-cache"))


def test_run_socket_backend_smoke(capsys):
    assert main(["run", "kvs", "--backend", "socket", "--smoke",
                 "--seed", "7", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["transport"] == "socket"
    assert payload["metrics"]["transport"]["codec"] == "json"
    assert payload["metrics"]["transport"]["frames_sent"] > 0


def test_run_sim_backend_reports_transport(capsys):
    assert main(["run", "kvs", "--smoke", "--seed", "7", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["transport"] == "sim"


def test_timeout_requires_socket_backend(capsys):
    assert main(["run", "kvs", "--smoke", "--timeout", "1"]) == 1
    assert "socket" in capsys.readouterr().err


def test_timeout_exits_five_with_partial_rundir(tmp_path, capsys):
    rundir = tmp_path / "runs"
    code = main([
        "run", "kvs", "--backend", "socket", "--smoke", "--seed", "7",
        "--timeout", "0.01", "--rundir", str(rundir),
    ])
    assert code == 5
    assert "wall-clock budget" in capsys.readouterr().err
    meta = json.loads((rundir / "meta.json").read_text())
    assert meta["timed_out"] is True
    assert meta["transport"] == "socket"


def test_audit_matrix_rejects_socket_backend(capsys):
    assert main(["audit", "--matrix", "--backend", "socket", "--smoke",
                 "--no-report"]) == 1
    assert "--matrix" in capsys.readouterr().err


def test_audit_socket_smoke_single_schedule(capsys, tmp_path):
    code = main([
        "audit", "--backend", "socket", "--smoke", "--apps", "kvs",
        "--schedules", "baseline", "--seeds", "7", "--no-report", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["campaign"] == "audit-smoke-socket"
    assert payload["cells"], "audit produced no cells"
    assert all(cell["sound"] for cell in payload["cells"])
    assert all(cell["params"]["backend"] == "socket"
               for cell in payload["cells"])
