"""The load-bearing invariant: sim and socket backends agree.

For every registered audit app, one uncoordinated and one coordinated
strategy run the baseline fault schedule on both backends with the same
seeds and pinned workload.  The contract (see docs/transport.md):

* **soundness-verdict equality, always** — the oracle's sound/unsound
  call against the predicted label must match across backends;
* **committed-state equality where the prediction coordinates** — when
  the predicted label's severity is at or below ``Async`` (severity 2),
  the strategy guarantees convergence independent of delivery timing,
  so per-replica committed state must be byte-identical across
  backends.  Uncoordinated cells are timing-dependent by design and
  are exempt from byte equality (the simulator's interleavings and the
  kernel scheduler's are different draws from the same anomaly space).
"""

from __future__ import annotations

import pytest

from repro.chaos.harnesses import audit_apps, harness_for
from repro.chaos.oracle import classify_runs

SEEDS = (7, 11)
_ASYNC_SEVERITY = 2


@pytest.fixture(autouse=True)
def _realtime_scale(monkeypatch):
    """Run socket cells 1:1 with wall time so fault windows stay wide."""
    monkeypatch.setenv("BLAZES_NET_TIME_SCALE", "1.0")


def _strategy_pair(harness):
    unco = next(s for s in harness.strategies if s not in harness.coordinated)
    coord = next(s for s in harness.strategies if s in harness.coordinated)
    return unco, coord


def _cells(app, strategy):
    """Observations for one (app, strategy) on both backends."""
    per_backend = {}
    for backend in ("sim", "socket"):
        harness = harness_for(app, smoke=True, backend=backend)
        schedule = harness.schedule_named("baseline")
        per_backend[backend] = [
            harness.observe(strategy, schedule, seed) for seed in SEEDS
        ]
    return per_backend


def _check_equivalence(app, strategy):
    harness = harness_for(app, smoke=True)
    predicted = harness.predicted(strategy)
    cells = _cells(app, strategy)

    sim_verdict = classify_runs(cells["sim"])
    sock_verdict = classify_runs(cells["socket"])

    # Soundness-verdict equality everywhere, and both sides sound.
    assert sim_verdict.sound_for(predicted), (
        f"{app}/{strategy}: sim unsound ({sim_verdict.observed} > {predicted})"
    )
    assert sock_verdict.sound_for(predicted), (
        f"{app}/{strategy}: socket unsound "
        f"({sock_verdict.observed} > {predicted})"
    )

    # Committed-state byte equality for coordinated predictions.
    if predicted.severity <= _ASYNC_SEVERITY:
        for seed, sim_obs, sock_obs in zip(
            SEEDS, cells["sim"], cells["socket"]
        ):
            assert sim_obs.committed == sock_obs.committed, (
                f"{app}/{strategy} seed {seed}: committed state diverged "
                f"across backends despite predicted {predicted}"
            )


@pytest.mark.parametrize("app", audit_apps())
def test_uncoordinated_strategy_equivalent(app):
    strategy, _ = _strategy_pair(harness_for(app, smoke=True))
    _check_equivalence(app, strategy)


@pytest.mark.parametrize("app", audit_apps())
def test_coordinated_strategy_equivalent(app):
    _, strategy = _strategy_pair(harness_for(app, smoke=True))
    _check_equivalence(app, strategy)
