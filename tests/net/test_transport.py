"""Property tests for the TCP transport: FIFO sessions, fault recovery.

These run real sockets on the loopback interface, with the virtual clock
mapped 1:1 onto wall time (``time_scale=1.0``) so fault windows are wide
relative to the chaos proxy's actuation poll.
"""

from __future__ import annotations

from repro.net.context import NetConfig
from repro.net.services import NetSimulator
from repro.sim.failure import FailureInjector
from repro.sim.network import LatencyModel, Process, make_network

CFG = NetConfig(time_scale=1.0, poll_interval=0.005)


class Sink(Process):
    def __init__(self, name):
        super().__init__(name)
        self.got = []

    def recv(self, msg):
        self.got.append(msg.payload)


class Streamer(Process):
    """Emits ``count`` sequenced messages, one every ``gap`` of virtual time."""

    def __init__(self, name, dst, count, gap=0.004, kind="data"):
        super().__init__(name)
        self.dst = dst
        self.count = count
        self.gap = gap
        self.kind = kind
        self._next = 0

    def on_start(self):
        self._emit()

    def _emit(self):
        if self._next >= self.count:
            return
        self.send(self.dst, self.kind, self._next)
        self._next += 1
        self.after(self.gap, self._emit)

    def recv(self, msg):  # pragma: no cover - sink only
        pass


def build(seed=7, **net_kwargs):
    sim = NetSimulator(seed=seed, config=CFG)
    net = make_network(
        sim, latency=LatencyModel(base=0.002, jitter=0.004), **net_kwargs
    )
    return sim, net


def test_reliable_kind_is_fifo_under_jitter():
    """Per-(src, dst, kind) FIFO for reliable kinds, despite heavy jitter.

    The latency model draws an exponential jitter per send, so wall-clock
    deadlines frequently invert; the session layer must still deliver in
    send order.
    """
    sim, net = build(reliable_kinds=("data",))
    net.register(Streamer("a", "b", 30, gap=0.001))
    b = net.register(Sink("b"))
    net.start()
    sim.run()
    assert b.got == list(range(30))
    assert net.delivered == 30


def test_partition_heals_with_no_residual_loss():
    """Reliable traffic crossing a partition is retried until the heal.

    Sends straddle a 60ms severed-link window; every message must arrive
    exactly once after the link heals, and the retry counter must show
    the transport actually fought through the outage.
    """
    sim, net = build(reliable_kinds=("data",))
    net.register(Streamer("a", "b", 25, gap=0.005))
    b = net.register(Sink("b"))
    chaos = FailureInjector(net)
    chaos.partition("a", "b", at=0.03, duration=0.06)
    net.start()
    sim.run()
    assert sorted(b.got) == list(range(25))
    assert len(b.got) == 25  # exactly once: no duplicates slip through
    assert net.dropped == 0
    assert net.retried > 0


def test_partition_drops_unreliable_traffic():
    sim, net = build()
    net.register(Streamer("a", "b", 25, gap=0.005))
    b = net.register(Sink("b"))
    chaos = FailureInjector(net)
    chaos.partition("a", "b", at=0.03, duration=0.06)
    net.start()
    sim.run()
    assert 0 < len(b.got) < 25  # the window ate the middle of the stream
    assert net.dropped == 25 - len(b.got)
    assert len(set(b.got)) == len(b.got)  # no duplicates (order may jitter)


def test_crash_restart_redelivers_exactly_once():
    """A reliable session survives a peer restart (``retry_crashed``).

    The receiver crashes mid-stream and recovers; the chaos proxy tears
    its endpoint down and rebinds the same port.  Held frames must be
    redelivered after recovery with no loss and no duplicates.
    """
    sim, net = build(reliable_kinds=("data",), retry_crashed=True)
    net.register(Streamer("a", "b", 20, gap=0.006))
    b = net.register(Sink("b"))
    chaos = FailureInjector(net)
    chaos.crash_for("b", at=0.04, duration=0.05)
    net.start()
    sim.run()
    assert sorted(b.got) == list(range(20))
    assert len(b.got) == 20
    assert net.dropped == 0


def test_crash_without_retry_sessions_loses_in_flight():
    sim, net = build(retry_crashed=False)
    net.register(Streamer("a", "b", 20, gap=0.006))
    b = net.register(Sink("b"))
    chaos = FailureInjector(net)
    chaos.crash_for("b", at=0.04, duration=0.05)
    net.start()
    sim.run()
    # Frames sitting in a TCP buffer when the endpoint aborts vanish
    # without crossing the drop policy, so conservation is one-sided.
    assert len(b.got) < 20
    assert net.dropped > 0
    assert len(b.got) + net.dropped <= 20


def test_loss_window_compiled_to_wall_clock():
    """A loss window from the schedule DSL actuates on the live transport."""
    sim, net = build()
    net.register(Streamer("a", "b", 30, gap=0.004))
    b = net.register(Sink("b"))
    chaos = FailureInjector(net)
    chaos.loss_window(at=0.03, duration=0.05, drop_prob=1.0)
    net.start()
    sim.run()
    assert 0 < len(b.got) < 30
    assert net.dropped == 30 - len(b.got)
