"""The warm worker pool: ordered merges, warm reuse, and accounting."""

from __future__ import annotations

import pytest

from repro.errors import ExecError
from repro.exec import PoolStats, WorkerPool, shared_pool, shutdown_shared_pool


@pytest.fixture(autouse=True)
def _isolated_shared_pool():
    """Never leak a shared pool (or its workers) across tests."""
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()


def square(*, x: int) -> dict:
    return {"square": x * x, "events": x}


def explode(*, x: int) -> dict:
    raise ValueError(f"cell {x} exploded")


def test_pool_runs_in_input_order():
    pool = WorkerPool(2)
    try:
        rows = pool.run(square, [{"x": x} for x in (3, 1, 4, 1, 5)])
    finally:
        pool.shutdown()
    assert [metrics["square"] for metrics, _, _ in rows] == [9, 1, 16, 1, 25]
    # every row carries its own wall/cpu timing
    assert all(wall >= 0.0 and cpu >= 0.0 for _, wall, cpu in rows)


def test_pool_workers_stay_warm_across_dispatches():
    pool = WorkerPool(2)
    try:
        pool.run(square, [{"x": 1}, {"x": 2}])
        pool.run(square, [{"x": 3}, {"x": 4}])
        assert pool.spawned == 1  # the second dispatch reused the workers
        assert pool.lifetime.tasks == 4
        assert pool.lifetime.dispatches == 2
    finally:
        pool.shutdown()


def test_pool_resize_respawns_with_new_worker_count():
    pool = WorkerPool(1)
    try:
        pool.run(square, [{"x": 1}])
        pool.resize(2)
        assert not pool.alive  # respawn deferred to the next dispatch
        rows = pool.run(square, [{"x": 2}, {"x": 3}])
        assert pool.spawned == 2
        assert pool.jobs == 2
        assert [m["square"] for m, _, _ in rows] == [4, 9]
    finally:
        pool.shutdown()


def test_pool_stats_count_tasks_events_and_utilization():
    pool = WorkerPool(2)
    try:
        pool.run(square, [{"x": x} for x in range(1, 9)])
    finally:
        pool.shutdown()
    stats = pool.last
    assert stats.tasks == 8
    assert stats.events == sum(range(1, 9))
    assert 1 <= stats.chunks <= 8
    assert 0.0 <= stats.utilization <= 1.0
    payload = stats.to_dict()
    assert payload["tasks"] == 8
    for worker in payload["workers"].values():
        assert worker["events_per_second"] >= 0.0


def test_pool_stats_merge_accumulates():
    lifetime = PoolStats(jobs=2)
    dispatch = PoolStats(jobs=2, dispatches=1)
    dispatch.note_task(101, wall=0.5, cpu=0.4, events=10)
    dispatch.note_task(102, wall=0.25, cpu=0.2, events=5)
    lifetime.merge(dispatch)
    lifetime.merge(dispatch)
    assert lifetime.tasks == 4
    assert lifetime.events == 30
    assert lifetime.busy_seconds == pytest.approx(1.5)
    assert lifetime.workers[101]["tasks"] == 2


def test_pool_propagates_worker_exceptions():
    pool = WorkerPool(2)
    try:
        with pytest.raises(ValueError, match="exploded"):
            pool.run(explode, [{"x": 1}])
    finally:
        pool.shutdown()


def test_pool_rejects_bad_worker_counts():
    with pytest.raises(ExecError):
        WorkerPool(0)
    pool = WorkerPool(1)
    with pytest.raises(ExecError):
        pool.resize(0)


def test_shared_pool_is_one_pool_resized_on_demand():
    first = shared_pool(2)
    assert shared_pool(2) is first  # same jobs: the same warm pool
    resized = shared_pool(3)
    assert resized is first and resized.jobs == 3
    shutdown_shared_pool()
    assert shared_pool(2) is not first  # a shutdown pool is replaced


def test_pool_empty_dispatch_is_a_noop():
    pool = WorkerPool(2)
    assert pool.run(square, []) == []
    assert not pool.alive  # nothing to do: no workers were spawned
