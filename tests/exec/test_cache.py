"""The content-addressed cell cache: keying, round-trips, invalidation."""

from __future__ import annotations

import json

from repro.chaos.harnesses import harness_for
from repro.exec import CACHE_SCHEMA_VERSION, CellCache, read_engine_stats
from repro.exec.cache import kwargs_digest, record_engine_stats, schedule_digest

FIELDS = {"kind": "test", "app": "wordcount", "strategy": "sealed", "seed": 7}


def test_key_is_stable_and_field_sensitive(tmp_path):
    cache = CellCache(tmp_path)
    key = cache.key(FIELDS)
    assert key == cache.key(dict(FIELDS))  # same content, same address
    for field, changed in (
        ("seed", 8),
        ("strategy", "ordered"),
        ("app", "kvs"),
        ("kind", "other"),
    ):
        assert cache.key({**FIELDS, field: changed}) != key, field


def test_put_get_roundtrip_counts_hits_and_misses(tmp_path):
    cache = CellCache(tmp_path)
    key = cache.key(FIELDS)
    assert cache.get(key) is None
    cache.put(key, {"score": 3, "pair": (1, 2)}, wall_seconds=0.5, fields=FIELDS)
    entry = cache.get(key)
    # values round-trip through JSON: tuples come back as lists
    assert entry["metrics"] == {"score": 3, "pair": [1, 2]}
    assert entry["wall_seconds"] == 0.5
    assert entry["fields"]["app"] == "wordcount"
    assert (cache.hits, cache.misses) == (1, 1)


def test_corrupt_or_mismatched_entries_read_as_misses(tmp_path):
    cache = CellCache(tmp_path)
    key = cache.key(FIELDS)
    path = cache.put(key, {"score": 1}, wall_seconds=0.1)
    path.write_text("not json{")
    assert cache.get(key) is None
    # a schema bump orphans old entries rather than serving them
    payload = {"cache_schema": CACHE_SCHEMA_VERSION + 1, "metrics": {"score": 1}}
    path.write_text(json.dumps(payload))
    assert cache.get(key) is None
    assert cache.misses == 2


def test_clear_empties_the_store(tmp_path):
    cache = CellCache(tmp_path)
    for seed in (1, 2, 3):
        cache.put(cache.key({**FIELDS, "seed": seed}), {"s": seed}, wall_seconds=0.1)
    assert len(cache.entries()) == 3
    assert cache.clear() == 3
    assert cache.entries() == []
    assert cache.stats()["entries"] == 0


def test_stats_summarize_the_store(tmp_path):
    cache = CellCache(tmp_path)
    cache.put(cache.key(FIELDS), {"score": 1}, wall_seconds=0.1)
    stats = cache.stats()
    assert stats["directory"] == str(tmp_path)
    assert stats["entries"] == 1
    assert stats["size_bytes"] > 0


def test_schedule_digest_tracks_compiled_faults_not_names():
    harness = harness_for("wordcount", smoke=True)
    schedules = {sched.name: sched for sched in harness.schedules}
    digests = {
        name: schedule_digest(sched.scaled(harness.horizon))
        for name, sched in schedules.items()
    }
    # distinct fault content -> distinct addresses...
    assert len(set(digests.values())) == len(digests)
    # ...and the digest follows the *compiled* faults: a different
    # horizon scale is a different schedule, recomputing the digest of
    # the same compiled schedule is stable
    some = next(sched for sched in schedules.values() if sched.faults)
    assert schedule_digest(some.scaled(2.0)) != schedule_digest(some.scaled(4.0))
    assert schedule_digest(some.scaled(2.0)) == schedule_digest(some.scaled(2.0))


def test_kwargs_digest_covers_non_json_values():
    base = {"workers": 4, "workload": object}
    assert kwargs_digest(base) == kwargs_digest(dict(base))
    assert kwargs_digest(base) != kwargs_digest({**base, "workers": 5})


def test_engine_stats_accumulate_across_runs(tmp_path):
    engine = {
        "cells": 10,
        "computed": 6,
        "cache_hits": 4,
        "cache_misses": 6,
        "pool": {"tasks": 6, "busy_seconds": 1.0, "wall_seconds": 0.5, "events": 100},
    }
    record_engine_stats(engine, tmp_path)
    record_engine_stats(engine, tmp_path)
    stats = read_engine_stats(tmp_path)
    assert stats["totals"]["runs"] == 2
    assert stats["totals"]["cells"] == 20
    assert stats["totals"]["cache_hits"] == 8
    assert stats["totals"]["events"] == 200
    assert stats["last"]["cells"] == 10


def test_engine_stats_read_is_empty_when_absent(tmp_path):
    assert read_engine_stats(tmp_path / "nope") == {}
