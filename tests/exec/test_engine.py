"""The evaluation engine: serial/pooled/cached runs are one computation."""

from __future__ import annotations

import pytest

from repro.bench import sweep
from repro.errors import ExecError
from repro.exec import (
    CellCache,
    bench_cache_fields,
    evaluate,
    report_digest,
    resolve_jobs,
    shutdown_shared_pool,
)

SCENARIOS = sweep("a{a}-b{b}", {"a": (1, 2, 3), "b": (10, 20)})


@pytest.fixture(autouse=True)
def _isolated_shared_pool():
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()


def cell(*, a: int, b: int) -> dict:
    return {"sum": a + b, "product": a * b, "events": a}


def test_resolve_jobs_explicit_env_and_default(monkeypatch):
    monkeypatch.delenv("BLAZES_JOBS", raising=False)
    assert resolve_jobs() == 1
    assert resolve_jobs(4) == 4
    monkeypatch.setenv("BLAZES_JOBS", "3")
    assert resolve_jobs() == 3
    assert resolve_jobs(2) == 2  # an explicit value beats the environment
    monkeypatch.setenv("BLAZES_JOBS", "zero")
    with pytest.raises(ExecError, match="not an integer"):
        resolve_jobs()
    with pytest.raises(ExecError, match=">= 1"):
        resolve_jobs(0)


def test_serial_and_pooled_runs_are_identical():
    serial = evaluate("toy", SCENARIOS, cell)
    pooled = evaluate("toy", SCENARIOS, cell, jobs=2)
    assert report_digest(serial) == report_digest(pooled)
    assert [r.name for r in pooled] == [s.name for s in SCENARIOS]
    assert pooled.engine["jobs"] == 2
    assert pooled.engine["pool"]["tasks"] == len(SCENARIOS)


def test_engine_block_shape_on_a_serial_uncached_run():
    report = evaluate("toy", SCENARIOS, cell)
    engine = report.engine
    assert engine["name"] == "toy"
    assert engine["cells"] == engine["computed"] == len(SCENARIOS)
    assert engine["cache_enabled"] is False
    assert engine["cache_hits"] == engine["cache_misses"] == 0
    assert engine["pool"] is None and engine["cache"] is None
    assert engine["wall_seconds"] >= 0.0


def test_cache_serves_identical_reruns(tmp_path):
    cache = CellCache(tmp_path)
    fields = bench_cache_fields("toy")
    cold = evaluate("toy", SCENARIOS, cell, cache=cache, cache_fields=fields)
    assert cold.engine["cache_misses"] == len(SCENARIOS)
    assert cold.engine["cache_hits"] == 0
    warm = evaluate("toy", SCENARIOS, cell, cache=cache, cache_fields=fields)
    assert warm.engine["cache_hits"] == len(SCENARIOS)
    assert warm.engine["computed"] == 0
    assert report_digest(warm) == report_digest(cold)


def test_cache_misses_on_changed_params_and_bench_name(tmp_path):
    cache = CellCache(tmp_path)
    evaluate("toy", SCENARIOS, cell, cache=cache, cache_fields=bench_cache_fields("toy"))
    # a new parameter point shares nothing with the stored grid
    shifted = sweep("a{a}-b{b}", {"a": (4,), "b": (10,)})
    report = evaluate(
        "toy", shifted, cell, cache=cache, cache_fields=bench_cache_fields("toy")
    )
    assert report.engine["cache_hits"] == 0
    # the same grid under another bench name is another address space
    renamed = evaluate(
        "toy", SCENARIOS, cell, cache=cache, cache_fields=bench_cache_fields("toy2")
    )
    assert renamed.engine["cache_hits"] == 0


def test_no_cache_computes_every_cell(tmp_path):
    cache = CellCache(tmp_path)
    fields = bench_cache_fields("toy")
    evaluate("toy", SCENARIOS, cell, cache=cache, cache_fields=fields)
    # cache=None is the --no-cache path: nothing read, nothing written
    report = evaluate("toy", SCENARIOS, cell, cache=None, cache_fields=fields)
    assert report.engine["computed"] == len(SCENARIOS)
    assert report.engine["cache_enabled"] is False
    assert len(cache.entries()) == len(SCENARIOS)  # the store is untouched


def test_engine_run_updates_cumulative_stats(tmp_path):
    from repro.exec import read_engine_stats

    cache = CellCache(tmp_path)
    fields = bench_cache_fields("toy")
    evaluate("toy", SCENARIOS, cell, cache=cache, cache_fields=fields)
    evaluate("toy", SCENARIOS, cell, cache=cache, cache_fields=fields)
    totals = read_engine_stats(tmp_path)["totals"]
    assert totals["runs"] == 2
    assert totals["cells"] == 2 * len(SCENARIOS)
    assert totals["cache_hits"] == len(SCENARIOS)


def test_engine_mirrors_into_telemetry(tmp_path):
    from repro.obs.telemetry import Telemetry

    cache = CellCache(tmp_path)
    hub = Telemetry()
    with hub.activate():
        evaluate(
            "toy", SCENARIOS, cell, cache=cache, cache_fields=bench_cache_fields("toy")
        )
    snapshot = hub.snapshot()
    assert snapshot["counters"]["engine.cells"]["computed"] == len(SCENARIOS)
    assert snapshot["counters"]["engine.cache"]["miss"] == len(SCENARIOS)


def test_audit_cell_cache_fields_track_seeds_and_schedules():
    from repro.bench import Scenario
    from repro.chaos.campaign import _cell_cache_fields
    from repro.chaos.harnesses import harness_for

    def fields_for(seeds=(7, 11), schedule="baseline"):
        return _cell_cache_fields(
            Scenario(
                "wordcount/eager",
                {
                    "app": "wordcount",
                    "strategy": "eager",
                    "schedule": schedule,
                    "smoke": True,
                    "seeds": list(seeds),
                    "app_module": None,
                },
            )
        )

    cache = CellCache("unused")
    base = cache.key(fields_for())
    assert cache.key(fields_for()) == base  # deterministic address
    assert cache.key(fields_for(seeds=(7, 13))) != base
    schedules = {s.name for s in harness_for("wordcount", smoke=True).schedules}
    other = next(name for name in sorted(schedules) if name != "baseline")
    assert cache.key(fields_for(schedule=other)) != base
