"""The repro.bench harness: sweeps, reports, and JSON output."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BenchReport,
    JsonReporter,
    Scenario,
    ScenarioResult,
    Stopwatch,
    run_bench,
    sweep,
    timed,
    timed_detail,
)
from repro.errors import BenchError


def toy_measure(*, x: int, y: int = 1) -> dict:
    return {"product": x * y, "x_back": x}


def test_sweep_builds_cartesian_product_with_formatted_names():
    scenarios = sweep("f{frame}-w{workers}", {"frame": (1, 16), "workers": (2, 4)})
    assert [s.name for s in scenarios] == ["f1-w2", "f1-w4", "f16-w2", "f16-w4"]
    assert scenarios[2].params == {"frame": 16, "workers": 2}


def test_run_bench_collects_metrics_and_wall_time():
    scenarios = sweep("x{x}", {"x": (2, 3)})
    report = run_bench("toy", scenarios, toy_measure)
    assert len(report) == 2
    row = report.row("x3")
    assert row["product"] == 3 and row.params == {"x": 3}
    assert row.wall_seconds >= 0.0


def test_report_select_one_and_column():
    report = run_bench("toy", sweep("x{x}-y{y}", {"x": (1, 2), "y": (5,)}), toy_measure)
    assert len(report.select(y=5)) == 2
    assert report.one(x=2)["product"] == 10
    assert report.column("product", y=5) == [5, 10]
    with pytest.raises(BenchError):
        report.one(y=5)  # two matches
    with pytest.raises(BenchError):
        report.row("nope")


def test_run_bench_rejects_non_mapping_measurements():
    with pytest.raises(BenchError):
        run_bench("bad", [Scenario("s", {})], lambda: 42)


def test_table_renders_all_metrics_aligned():
    report = run_bench("toy", sweep("x{x}", {"x": (7,)}), toy_measure)
    table = report.table()
    lines = table.splitlines()
    assert "scenario" in lines[0] and "product" in lines[0]
    assert "x7" in lines[1] and "7" in lines[1]


def test_json_reporter_writes_bench_file(tmp_path):
    reporter = JsonReporter(tmp_path)
    report = run_bench(
        "figX", sweep("x{x}", {"x": (1, 2)}), toy_measure, reporter=reporter
    )
    path = tmp_path / "BENCH_figX.json"
    assert path == reporter.path_for("figX")
    payload = json.loads(path.read_text())
    assert payload["bench"] == "figX"
    assert len(payload["scenarios"]) == 2
    assert payload["scenarios"][0]["metrics"]["product"] == 1
    assert "created" in payload and "environment" in payload
    assert isinstance(report, BenchReport)


def test_json_reporter_honors_env_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "out"))
    reporter = JsonReporter()
    run_bench("figY", [Scenario("only", {})], lambda: {"ok": True}, reporter=reporter)
    assert (tmp_path / "out" / "BENCH_figY.json").exists()


def test_scenario_result_is_json_round_trippable():
    result = ScenarioResult("s", {"a": 1}, {"m": 2.5}, 0.01)
    assert json.loads(json.dumps(result.metrics)) == {"m": 2.5}


def test_stopwatch_and_timed():
    with Stopwatch() as watch:
        sum(range(1000))
    assert watch.seconds >= 0.0
    value, seconds = timed(lambda a: a + 1, 41)
    assert value == 42 and seconds >= 0.0


def test_timed_detail_measures_wall_and_cpu():
    value, wall, cpu = timed_detail(lambda a: sum(range(a)), 10_000)
    assert value == sum(range(10_000))
    assert wall >= 0.0 and cpu >= 0.0


def test_run_bench_records_cpu_seconds_per_scenario():
    report = run_bench("toy", sweep("x{x}", {"x": (2,)}), toy_measure)
    row = report.row("x2")
    assert row.cpu_seconds is not None and row.cpu_seconds >= 0.0
    # ...and the JSON payload carries it alongside wall_seconds
    payload = report.to_dict()
    assert "cpu_seconds" in payload["scenarios"][0]


def test_bench_json_environment_records_cpu_count(tmp_path):
    import json
    import os

    reporter = JsonReporter(tmp_path)
    run_bench("figZ", [Scenario("only", {})], lambda: {"ok": True}, reporter=reporter)
    payload = json.loads(reporter.path_for("figZ").read_text())
    assert payload["environment"]["cpu_count"] == os.cpu_count()
