"""Unit tests for spec-file parsing and serialization."""

from __future__ import annotations

import pytest

from repro.core import analyze, dump_spec, loads_spec
from repro.core.annotations import AnnotationKind
from repro.errors import SpecError

WORDCOUNT = """
name: wordcount
components:
  Splitter:
    annotations:
      - { from: tweets, to: words, label: CR }
  Count:
    annotations:
      - { from: words, to: counts, label: OW, subscript: [word, batch] }
  Commit:
    annotations:
      - { from: counts, to: db, label: CW }
streams:
  - { name: tweets, to: Splitter.tweets, seal: [batch] }
  - { name: words, from: Splitter.words, to: Count.words }
  - { name: counts, from: Count.counts, to: Commit.counts }
  - { name: db, from: Commit.db }
fds:
  - { determines: [symbol], by: [company], injective: true }
"""


def test_parse_wordcount_spec():
    dataflow, fds = loads_spec(WORDCOUNT)
    assert dataflow.name == "wordcount"
    assert len(dataflow.components) == 3
    count = dataflow.component("Count")
    (path,) = count.paths
    assert path.annotation.kind is AnnotationKind.OW
    assert path.annotation.gate == frozenset({"word", "batch"})
    assert dataflow.stream("tweets").seal_key == frozenset({"batch"})
    assert fds.injectively_determines({"company"}, {"symbol"})


def test_parsed_spec_analyzes_like_programmatic_flow():
    dataflow, fds = loads_spec(WORDCOUNT)
    result = analyze(dataflow, fds)
    assert str(result.label_of("db")) == "Async"


def test_rep_flag_on_component_and_stream():
    text = """
name: reps
components:
  A:
    rep: true
    annotations: [{ from: i, to: o, label: CW }]
streams:
  - { name: i, to: A.i, rep: true }
  - { name: o, from: A.o }
"""
    dataflow, _ = loads_spec(text)
    assert dataflow.component("A").rep
    assert dataflow.stream("i").rep


def test_single_annotation_mapping_accepted():
    text = """
components:
  A:
    annotation: { from: i, to: o, label: CR }
streams:
  - { name: i, to: A.i }
  - { name: o, from: A.o }
"""
    dataflow, _ = loads_spec(text)
    assert len(dataflow.component("A").paths) == 1


def test_endpoint_pair_syntax_accepted():
    text = """
components:
  A:
    annotations: [{ from: i, to: o, label: CR }]
streams:
  - { name: i, to: [A, i] }
  - { name: o, from: [A, o] }
"""
    dataflow, _ = loads_spec(text)
    assert dataflow.stream("i").dst == ("A", "i")


@pytest.mark.parametrize(
    "text,fragment",
    [
        ("[]", "mapping"),
        ("components: {}\nstreams: []", "components"),
        ("components: {A: {annotations: []}}\nstreams: [{name: s}]", "annotations"),
        (
            "components: {A: {annotations: [{from: i, to: o}]}}\n"
            "streams: [{name: i, to: A.i}]",
            "from/to/label",
        ),
        (
            "components: {A: {annotations: [{from: i, to: o, label: CR}]}}\n"
            "streams: [{to: A.i}]",
            "name",
        ),
        (
            "components: {A: {annotations: [{from: i, to: o, label: CR}]}}\n"
            "streams: [{name: i, to: badendpoint}]",
            "Component.interface",
        ),
        ("components: {A: {annotations: [{from: i, to: o, label: CR}]}}\n"
         "streams: [{name: i, to: A.i, seal: k}]", "seal"),
        (": not yaml :\n  - ][", "YAML"),
    ],
)
def test_malformed_specs_rejected(text, fragment):
    with pytest.raises(SpecError) as excinfo:
        loads_spec(text)
    assert fragment.lower() in str(excinfo.value).lower()


def test_dump_round_trips():
    dataflow, fds = loads_spec(WORDCOUNT)
    text = dump_spec(dataflow, fds)
    reparsed, refds = loads_spec(text)
    assert {c.name for c in reparsed.components} == {
        c.name for c in dataflow.components
    }
    assert {s.name for s in reparsed.streams} == {s.name for s in dataflow.streams}
    assert reparsed.stream("tweets").seal_key == frozenset({"batch"})
    assert refds.injectively_determines({"company"}, {"symbol"})
    result = analyze(reparsed, refds)
    assert str(result.label_of("db")) == "Async"
