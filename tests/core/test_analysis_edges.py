"""Edge cases for the whole-dataflow analysis."""

from __future__ import annotations

import pytest

from repro.core import (
    CR,
    CW,
    OR,
    OW,
    Dataflow,
    Inst,
    LabelKind,
    Run,
    analyze,
)
from repro.errors import AnalysisError


def test_multi_component_cycle_is_collapsed():
    """Two components gossiping through each other form one cycle."""
    flow = Dataflow("gossip")
    a = flow.add_component("A")
    a.add_path("in", "out", CW())
    a.add_path("peer", "out", CW())
    b = flow.add_component("B")
    b.add_path("in", "out", CW())
    flow.add_stream("src", dst=("A", "in"))
    flow.add_stream("ab", src=("A", "out"), dst=("B", "in"))
    flow.add_stream("ba", src=("B", "out"), dst=("A", "peer"))
    flow.add_stream("sink", src=("B", "out"))
    result = analyze(flow)
    assert result.cycles == (frozenset({"A", "B"}),)
    assert result.label_of("sink").kind is LabelKind.ASYNC
    assert result.output("A", "out").collapsed
    assert result.output("B", "out").collapsed


def test_cycle_collapse_takes_worst_annotation():
    """An order-sensitive member dominates the collapsed cycle."""
    flow = Dataflow("bad-gossip")
    a = flow.add_component("A", rep=True)
    a.add_path("in", "out", CW())
    a.add_path("peer", "out", OW("k"))
    b = flow.add_component("B")
    b.add_path("in", "out", CW())
    flow.add_stream("src", dst=("A", "in"))
    flow.add_stream("ab", src=("A", "out"), dst=("B", "in"))
    flow.add_stream("ba", src=("B", "out"), dst=("A", "peer"))
    flow.add_stream("sink", src=("B", "out"))
    result = analyze(flow)
    assert result.label_of("sink").kind is LabelKind.DIVERGE


def test_external_label_override():
    """Tests can mark an external input as already-Inst."""
    flow = Dataflow("override")
    comp = flow.add_component("Store")
    comp.add_path("in", "out", CW())
    flow.add_stream("in", dst=("Store", "in"), label=Inst(), rep=True)
    flow.add_stream("out", src=("Store", "out"))
    result = analyze(flow)
    # Inst into stateful + replicated consumer -> Diverge
    assert result.label_of("out").kind is LabelKind.DIVERGE


def test_label_override_with_seal_rejected():
    from repro.errors import DataflowError

    flow = Dataflow("conflict")
    comp = flow.add_component("C")
    comp.add_path("in", "out", OW("k"))
    # now rejected at construction time (keeps every dataflow dumpable)...
    with pytest.raises(DataflowError):
        flow.add_stream("in", dst=("C", "in"), seal=["k"], label=Run())
    # ...and the analyzer still rejects a hand-assembled conflicting stream
    flow.add_stream("in", dst=("C", "in"), seal=["k"])
    flow.stream("in").label = Run()
    flow.add_stream("out", src=("C", "out"))
    with pytest.raises(AnalysisError):
        analyze(flow)


def test_rep_stream_annotation_without_rep_component():
    """The Rep annotation can ride on a stream directly."""
    flow = Dataflow("rep-stream")
    producer = flow.add_component("P")
    producer.add_path("in", "out", OR("k"))
    consumer = flow.add_component("C")
    consumer.add_path("in", "out", CW())
    flow.add_stream("src", dst=("P", "in"))
    flow.add_stream("mid", src=("P", "out"), dst=("C", "in"), rep=True)
    flow.add_stream("sink", src=("C", "out"))
    result = analyze(flow)
    # P itself is unreplicated -> its unprotected read is Run.  Run means
    # cross-run nondeterminism only: within one run, every consumer
    # replica sees the same contents, so the output does not diverge —
    # it stays Run through the confluent stateful consumer.
    assert result.label_of("mid").kind is LabelKind.RUN
    assert result.label_of("sink").kind is LabelKind.RUN


def test_fan_out_assigns_same_label_to_all_consumers():
    flow = Dataflow("fan")
    src = flow.add_component("Src")
    src.add_path("in", "out", CR())
    for name in ("A", "B"):
        comp = flow.add_component(name)
        comp.add_path("in", "out", CR())
        flow.add_stream(f"to_{name}", src=("Src", "out"), dst=(name, "in"))
        flow.add_stream(f"out_{name}", src=(name, "out"))
    flow.add_stream("ingress", dst=("Src", "in"), seal=["k"])
    result = analyze(flow)
    assert result.label_of("to_A") == result.label_of("to_B")
    assert result.label_of("out_A").kind is LabelKind.SEAL


def test_multiple_streams_into_one_interface():
    flow = Dataflow("merge-in")
    comp = flow.add_component("Union")
    comp.add_path("in", "out", CW())
    flow.add_stream("left", dst=("Union", "in"), seal=["k"])
    flow.add_stream("right", dst=("Union", "in"))  # unsealed
    flow.add_stream("out", src=("Union", "out"))
    result = analyze(flow)
    # merge of Seal (from left) and Async (from right) -> Async
    assert result.label_of("out").kind is LabelKind.ASYNC


def test_severity_and_consistency_helpers():
    flow = Dataflow("helpers")
    comp = flow.add_component("C", rep=True)
    comp.add_path("in", "out", OW("k"))
    flow.add_stream("in", dst=("C", "in"))
    flow.add_stream("out", src=("C", "out"))
    result = analyze(flow)
    assert result.severity == 5
    assert not result.is_consistent
    assert result.components_needing_coordination() == ("C",)
    assert set(result.sink_labels) == {"out"}


def test_unknown_stream_label_lookup_raises():
    flow = Dataflow("lookup")
    comp = flow.add_component("C")
    comp.add_path("in", "out", CR())
    flow.add_stream("in", dst=("C", "in"))
    flow.add_stream("out", src=("C", "out"))
    result = analyze(flow)
    with pytest.raises(AnalysisError):
        result.label_of("ghost")
    with pytest.raises(AnalysisError):
        result.output("C", "ghost")
