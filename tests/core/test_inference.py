"""Unit tests for the Figure 9 inference rules."""

from __future__ import annotations

import pytest

from repro.core.annotations import CR, CW, OR, OW
from repro.core.fd import FDSet
from repro.core.inference import derive_path
from repro.core.labels import (
    Async,
    Diverge,
    Inst,
    LabelKind,
    NDRead,
    Run,
    Seal,
    Taint,
)


def outputs(label, annotation, fds=None):
    return {step.output_label for step in derive_path(label, annotation, fds)}


def rules(label, annotation, fds=None):
    return {step.rule for step in derive_path(label, annotation, fds)}


class TestRule1:
    """{Async, Run} into OR[gate] derives NDRead[gate]."""

    @pytest.mark.parametrize("label", [Async(), Run()])
    def test_ndread_derived(self, label):
        assert outputs(label, OR("g")) == {NDRead("g")}
        assert rules(label, OR("g")) == {"1"}

    def test_star_gate_produces_star_ndread(self):
        (step,) = derive_path(Async(), OR())
        assert step.output_label.key == frozenset({"*"})


class TestRule2:
    """{Async, Run} into OW[gate] derives Taint."""

    @pytest.mark.parametrize("label", [Async(), Run()])
    def test_taint_derived(self, label):
        assert outputs(label, OW("g")) == {Taint()}
        assert rules(label, OW("g")) == {"2"}


class TestRule3:
    """Inst into a stateful path derives Taint."""

    def test_inst_into_cw(self):
        assert outputs(Inst(), CW()) == {Taint()}
        assert rules(Inst(), CW()) == {"3"}

    def test_inst_into_ow(self):
        assert outputs(Inst(), OW("g")) == {Taint()}

    def test_inst_into_cr_is_preserved(self):
        assert outputs(Inst(), CR()) == {Inst()}

    def test_inst_into_or_is_conservative(self):
        derived = outputs(Inst(), OR("g"))
        assert Inst() in derived
        assert NDRead("g") in derived


class TestRule4:
    """Incompatible seals into OW derive Taint."""

    def test_incompatible_seal_ow(self):
        assert outputs(Seal("other"), OW("g")) == {Taint()}
        assert rules(Seal("other"), OW("g")) == {"4"}

    def test_incompatible_seal_or_behaves_like_async(self):
        assert outputs(Seal("other"), OR("g")) == {NDRead("g")}


class TestSealConsumption:
    """Compatible seals are consumed: Async output plus retained seal."""

    @pytest.mark.parametrize("annotation", [OR("g"), OW("g")])
    def test_compatible_seal(self, annotation):
        derived = outputs(Seal("g"), annotation)
        assert derived == {Async(), Seal("g")}

    def test_fd_extends_compatibility(self):
        fds = FDSet()
        fds.add("company", "symbol", injective=True)
        derived = outputs(Seal("company"), OW("symbol"), fds)
        assert Async() in derived

    def test_confluent_paths_preserve_seals(self):
        assert outputs(Seal("k"), CR()) == {Seal("k")}
        assert outputs(Seal("k"), CW()) == {Seal("k")}


class TestPreservation:
    @pytest.mark.parametrize("label", [Async(), Run(), Seal("k")])
    @pytest.mark.parametrize("annotation", [CR(), CW()])
    def test_confluent_paths_preserve(self, label, annotation):
        if label.kind is LabelKind.SEAL:
            assert outputs(label, annotation) == {label}
        else:
            assert outputs(label, annotation) == {label}
            assert rules(label, annotation) == {"p"}

    def test_diverge_preserved_and_taints_state(self):
        derived = outputs(Diverge(), CW())
        assert Diverge() in derived
        assert Taint() in derived

    def test_diverge_through_stateless_confluent(self):
        assert outputs(Diverge(), CR()) == {Diverge()}


def test_internal_labels_are_invalid_inputs():
    with pytest.raises(ValueError):
        derive_path(Taint(), CR())
    with pytest.raises(ValueError):
        derive_path(NDRead("g"), OW("g"))
