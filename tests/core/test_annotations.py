"""Unit tests for C.O.W.R. path annotations (paper Figure 7)."""

from __future__ import annotations

import pytest

from repro.core.annotations import CR, CW, OR, OW, STAR, parse_annotation
from repro.errors import AnnotationError


def test_severity_matches_figure_7():
    assert CR().severity == 1
    assert CW().severity == 2
    assert OR("g").severity == 3
    assert OW("g").severity == 4


def test_confluence_and_statefulness():
    assert CR().confluent and not CR().stateful
    assert CW().confluent and CW().stateful
    assert not OR("g").confluent and not OR("g").stateful
    assert not OW("g").confluent and OW("g").stateful


def test_star_gate_for_unknown_partitioning():
    assert OR().gate is STAR
    assert OW().gate is STAR
    assert str(OR()) == "OR*"


def test_gate_flattening():
    assert OW("a", "b").gate == frozenset({"a", "b"})
    assert OW(["a", "b"]).gate == frozenset({"a", "b"})
    assert str(OW("b", "a")) == "OW[a,b]"


def test_confluent_annotations_reject_gates():
    with pytest.raises(AnnotationError):
        parse_annotation("CR", ["k"])
    with pytest.raises(AnnotationError):
        parse_annotation("CW*")


def test_parse_annotation_round_trips():
    assert parse_annotation("CR") == CR()
    assert parse_annotation("cw") == CW()
    assert parse_annotation("OW", ["word", "batch"]) == OW("word", "batch")
    assert parse_annotation("OR*") == OR()
    assert parse_annotation("OR") == OR()  # no subscript -> star


def test_parse_rejects_unknown_and_conflicting():
    with pytest.raises(AnnotationError):
        parse_annotation("XX")
    with pytest.raises(AnnotationError):
        parse_annotation("OW*", ["k"])


def test_empty_explicit_gate_rejected():
    from repro.core.annotations import AnnotationKind, PathAnnotation

    with pytest.raises(AnnotationError):
        PathAnnotation(AnnotationKind.OW, frozenset())
