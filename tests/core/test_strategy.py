"""Unit tests for coordination selection (paper Section V-B)."""

from __future__ import annotations

from repro.core import (
    CR,
    CW,
    OR,
    OW,
    Async,
    Dataflow,
    Diverge,
    FDSet,
    Inst,
    NoCoordination,
    OrderedStrategy,
    OrderStrategy,
    Run,
    Seal,
    SealStrategy,
    analyze,
    choose_strategies,
    label_under_ordering,
    ordered_plan,
)


def one_component_flow(annotation, *, seal=None, rep=True):
    flow = Dataflow("one")
    comp = flow.add_component("C", rep=rep)
    comp.add_path("in", "out", annotation)
    flow.add_stream("in", dst=("C", "in"), seal=seal)
    flow.add_stream("out", src=("C", "out"))
    return flow


def test_confluent_components_need_nothing():
    for annotation in (CR(), CW()):
        result = analyze(one_component_flow(annotation))
        plan = choose_strategies(result)
        assert isinstance(plan.strategy_for("C"), NoCoordination)
        assert not plan.coordinated_components


def test_compatible_seal_selects_seal_strategy():
    result = analyze(one_component_flow(OW("k"), seal=["k"]))
    plan = choose_strategies(result)
    strategy = plan.strategy_for("C")
    assert isinstance(strategy, SealStrategy)
    assert strategy.partitions == (("in", frozenset({"k"})),)
    assert strategy.gates == (frozenset({"k"}),)
    assert "sealed on {k}" in strategy.describe()
    assert not plan.uses_global_order


def test_unsealed_order_sensitive_falls_back_to_ordering():
    result = analyze(one_component_flow(OW("k")))
    plan = choose_strategies(result)
    strategy = plan.strategy_for("C")
    assert isinstance(strategy, OrderStrategy)
    assert strategy.streams == ("in",)
    assert plan.uses_global_order
    assert "C" in plan.coordinated_components


def test_star_gate_reports_reason():
    result = analyze(one_component_flow(OW()))
    strategy = choose_strategies(result).strategy_for("C")
    assert isinstance(strategy, OrderStrategy)
    assert "unknown gate" in strategy.reason


def test_incompatible_seal_reports_reason():
    result = analyze(one_component_flow(OW("k"), seal=["other"]))
    strategy = choose_strategies(result).strategy_for("C")
    assert isinstance(strategy, OrderStrategy)
    assert "compatible" in strategy.reason


def test_multiple_gates_must_all_be_compatible():
    flow = Dataflow("two-gates")
    comp = flow.add_component("C", rep=True)
    comp.add_path("a", "out", OW("k"))
    comp.add_path("b", "out", OR("j"))
    flow.add_stream("a", dst=("C", "a"), seal=["k"])
    flow.add_stream("b", dst=("C", "b"))
    flow.add_stream("out", src=("C", "out"))
    result = analyze(flow)
    strategy = choose_strategies(result).strategy_for("C")
    # the seal on `a` covers gate {k} but not gate {j}: must order
    assert isinstance(strategy, OrderStrategy)


def test_fd_makes_seal_cover_both_gates():
    flow = Dataflow("fd-covered")
    comp = flow.add_component("C", rep=True)
    comp.add_path("a", "out", OW("k"))
    comp.add_path("b", "out", OR("j"))
    flow.add_stream("a", dst=("C", "a"), seal=["k"])
    flow.add_stream("b", dst=("C", "b"), seal=["k"])
    flow.add_stream("out", src=("C", "out"))
    fds = FDSet()
    fds.add("k", "j", injective=True)
    result = analyze(flow, fds)
    strategy = choose_strategies(result).strategy_for("C")
    assert isinstance(strategy, SealStrategy)


def test_strategy_for_unknown_component_defaults_to_none():
    result = analyze(one_component_flow(CR()))
    plan = choose_strategies(result)
    assert isinstance(plan.strategy_for("ghost"), NoCoordination)


def test_plan_describe_lists_every_component():
    result = analyze(one_component_flow(OW("k")))
    plan = choose_strategies(result)
    assert "ordered delivery at C" in plan.describe()


class TestOrderedPlan:
    """The imposed-ordering plan (deployment-chosen Section V-B2)."""

    def test_order_sensitive_component_gets_ordered_strategy(self):
        # even with a compatible seal available, an ordered deployment
        # routes through the sequencer — it never needs the seal key
        result = analyze(one_component_flow(OW("k"), seal=["k"]))
        plan = ordered_plan(result, topic="t.inputs")
        strategy = plan.strategy_for("C")
        assert isinstance(strategy, OrderedStrategy)
        assert strategy.streams == ("in",)
        assert strategy.topic == "t.inputs"
        assert "sequencer-ordered delivery installed at C" in strategy.describe()
        assert plan.uses_global_order
        assert plan.coordinated_components == ("C",)

    def test_confluent_component_still_needs_nothing(self):
        result = analyze(one_component_flow(CR()))
        plan = ordered_plan(result)
        assert isinstance(plan.strategy_for("C"), NoCoordination)
        assert not plan.uses_global_order

    def test_label_under_ordering_caps_at_async(self):
        for label in (Run(), Inst(), Diverge()):
            assert label_under_ordering(label) == Async()
        for label in (Async(), Seal("k")):
            assert label_under_ordering(label) == label
