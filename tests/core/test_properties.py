"""Property-based tests (hypothesis) for the analyzer core."""

from __future__ import annotations

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core.annotations import CR, CW, OR, OW
from repro.core.fd import FDSet, compatible
from repro.core.inference import derive_path
from repro.core.labels import (
    Async,
    Diverge,
    Inst,
    Label,
    LabelKind,
    NDRead,
    Run,
    Seal,
    Taint,
    max_label,
    merge_labels,
)
from repro.core.reconciliation import reconcile

attrs = st.sampled_from(["a", "b", "c", "d", "k", "id", "campaign"])
attr_sets = st.frozensets(attrs, min_size=1, max_size=3)

external_labels = st.one_of(
    st.just(Async()),
    st.just(Run()),
    st.just(Inst()),
    st.just(Diverge()),
    attr_sets.map(Seal),
)

all_labels = st.one_of(
    external_labels,
    st.just(Taint()),
    attr_sets.map(NDRead),
)

annotations = st.one_of(
    st.just(CR()),
    st.just(CW()),
    attr_sets.map(lambda g: OR(g)),
    attr_sets.map(lambda g: OW(g)),
    st.just(OR()),
    st.just(OW()),
)


class TestLabelLattice:
    @given(st.lists(all_labels, min_size=1, max_size=6))
    def test_merge_is_order_insensitive(self, labels):
        assert merge_labels(labels) == merge_labels(list(reversed(labels)))
        assert merge_labels(labels) == merge_labels(labels + labels)

    @given(st.lists(all_labels, min_size=1, max_size=6), all_labels)
    def test_merge_is_monotone_in_added_labels(self, labels, extra):
        # Reconciliation guarantees merge() never sees an internal-only
        # set (it always adds a non-internal verdict first); the default
        # Async for that degenerate case is excluded from the property.
        assume(any(not l.is_internal for l in labels))
        base = merge_labels(labels)
        grown = merge_labels(labels + [extra])
        assert grown.severity >= base.severity

    @given(st.lists(all_labels, min_size=1, max_size=6))
    def test_merge_never_returns_internal(self, labels):
        assert not merge_labels(labels).is_internal

    @given(st.lists(all_labels, min_size=1, max_size=6))
    def test_max_label_is_an_upper_bound(self, labels):
        top = max_label(labels)
        assert all(top.severity >= l.severity for l in labels)


class TestInferenceProperties:
    @given(external_labels, annotations)
    def test_derivation_is_total_and_deterministic(self, label, annotation):
        first = derive_path(label, annotation)
        second = derive_path(label, annotation)
        assert first == second
        assert first, "every (label, annotation) pair derives something"

    @given(external_labels, annotations)
    def test_confluent_paths_never_produce_internal_taint_from_clean_input(
        self, label, annotation
    ):
        if not annotation.confluent:
            return
        if label.kind in (LabelKind.INST, LabelKind.DIVERGE):
            return
        derived = derive_path(label, annotation)
        assert all(
            step.output_label.kind is not LabelKind.TAINT for step in derived
        )

    @given(external_labels, annotations)
    def test_order_sensitive_paths_flag_unordered_inputs(self, label, annotation):
        if annotation.confluent:
            return
        if label.kind not in (LabelKind.ASYNC, LabelKind.RUN):
            return
        derived = {step.output_label.kind for step in derive_path(label, annotation)}
        assert derived <= {LabelKind.NDREAD, LabelKind.TAINT}


class TestReconciliationProperties:
    @given(st.lists(all_labels, max_size=6), st.booleans())
    def test_merged_is_never_internal(self, labels, replicated):
        result = reconcile(labels, replicated=replicated)
        assert not result.merged.is_internal

    @given(st.lists(all_labels, max_size=6))
    def test_replication_never_reduces_severity(self, labels):
        single = reconcile(labels, replicated=False)
        replicated = reconcile(labels, replicated=True)
        assert replicated.merged.severity >= single.merged.severity

    @given(st.lists(all_labels, max_size=6), st.booleans())
    def test_reconcile_is_idempotent_on_added_labels(self, labels, replicated):
        first = reconcile(labels, replicated=replicated)
        again = reconcile(first.labels | first.added, replicated=replicated)
        assert again.merged.severity >= first.merged.severity


class TestFDProperties:
    @given(attr_sets, attr_sets)
    def test_identity_always_compatible_with_superset_gate(self, key, extra):
        gate = key | extra
        assert compatible(gate, key)

    @given(attr_sets)
    def test_key_injectively_determines_itself(self, key):
        fds = FDSet()
        assert fds.injectively_determines(key, key)

    @given(
        st.lists(st.tuples(attr_sets, attr_sets, st.booleans()), max_size=5),
        attr_sets,
    )
    def test_closure_is_monotone_and_idempotent(self, deps, start):
        fds = FDSet()
        for lhs, rhs, injective in deps:
            fds.add(lhs, rhs, injective=injective)
        closure = fds.closure(start)
        assert start <= closure
        assert fds.closure(closure) == closure

    @given(
        st.lists(st.tuples(attrs, attrs), max_size=5),
        attrs,
        attrs,
        attrs,
    )
    def test_injective_determination_is_transitive(self, renames, a, b, c):
        fds = FDSet()
        for x, y in renames:
            fds.add_identity(x, y)
        if fds.injectively_determines({a}, {b}) and fds.injectively_determines(
            {b}, {c}
        ):
            assert fds.injectively_determines({a}, {c})


class TestLabelConstruction:
    @given(attr_sets)
    def test_seal_equality_independent_of_order(self, key):
        assert Seal(key) == Seal(*sorted(key))
        assert Label(LabelKind.SEAL, frozenset(key)) == Seal(key)

    @given(all_labels)
    def test_str_round_trips_severity_class(self, label):
        text = str(label)
        assert text
        if label.key:
            assert "[" in text and "]" in text
