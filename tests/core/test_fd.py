"""Unit tests for injective functional dependencies and ``compatible``."""

from __future__ import annotations

import pytest

from repro.core.annotations import STAR
from repro.core.fd import FD, FDSet, compatible


class TestFDSet:
    def test_closure_is_reflexive_and_transitive(self):
        fds = FDSet()
        fds.add("a", "b")
        fds.add("b", "c")
        assert fds.closure("a") == {"a", "b", "c"}
        assert fds.closure("b") == {"b", "c"}
        assert fds.closure("z") == {"z"}

    def test_composite_lhs_requires_full_match(self):
        fds = FDSet()
        fds.add(["a", "b"], "c")
        assert "c" not in fds.closure("a")
        assert "c" in fds.closure(["a", "b"])

    def test_empty_sides_rejected(self):
        fds = FDSet()
        with pytest.raises(ValueError):
            fds.add([], "x")
        with pytest.raises(ValueError):
            fds.add("x", [])

    def test_duplicates_not_stored_twice(self):
        fds = FDSet()
        fds.add("a", "b")
        fds.add("a", "b")
        assert len(fds) == 1
        assert FD(frozenset({"a"}), frozenset({"b"}), True) in fds

    def test_injective_images_start_with_identity(self):
        fds = FDSet()
        assert frozenset({"k"}) in fds.injective_images("k")

    def test_injective_chain_composes(self):
        fds = FDSet()
        fds.add("company", "symbol", injective=True)
        fds.add("symbol", "isin", injective=True)
        assert fds.injectively_determines("company", "isin")

    def test_noninjective_links_break_the_chain(self):
        fds = FDSet()
        fds.add("company", "city", injective=False)
        assert not fds.injectively_determines("company", "city")
        # ...but the city is still in the plain closure
        assert "city" in fds.closure("company")

    def test_augmentation_with_determined_attributes(self):
        # pairing an injective image with any determined attribute stays
        # injective
        fds = FDSet()
        fds.add("company", "symbol", injective=True)
        fds.add("company", "city", injective=False)
        assert fds.injectively_determines("company", {"symbol", "city"})

    def test_projection_of_composite_key_is_not_injective(self):
        fds = FDSet()
        # seal on {a, b} does not injectively determine a alone
        assert not fds.injectively_determines({"a", "b"}, {"a"})
        # but it determines {a, b}
        assert fds.injectively_determines({"a", "b"}, {"a", "b"})

    def test_add_identity_is_bidirectional(self):
        fds = FDSet()
        fds.add_identity("x", "y")
        assert fds.injectively_determines("x", "y")
        assert fds.injectively_determines("y", "x")

    def test_merged_combines_both_sets(self):
        a, b = FDSet(), FDSet()
        a.add("x", "y")
        b.add("y", "z")
        merged = a.merged(b)
        assert merged.injectively_determines("x", "z")
        assert len(a) == 1 and len(b) == 1  # originals untouched


class TestCompatible:
    def test_identity_seal_in_gate(self):
        # paper: Seal[batch] is compatible with OW[word,batch]
        assert compatible({"word", "batch"}, {"batch"})

    def test_composite_seal_needs_full_containment(self):
        assert compatible({"a", "b", "c"}, {"a", "b"})
        assert not compatible({"a"}, {"a", "b"})

    def test_star_gate_incompatible_with_everything(self):
        assert not compatible(STAR, {"k"})
        assert not compatible(None, {"k"})

    def test_empty_sets_incompatible(self):
        assert not compatible(frozenset(), {"k"})
        assert not compatible({"k"}, frozenset())

    def test_injective_fd_extends_compatibility(self):
        # paper: company name seals imply stock symbol seals
        fds = FDSet()
        fds.add("company", "symbol", injective=True)
        assert compatible({"id", "symbol"}, {"company"}, fds)

    def test_noninjective_fd_does_not(self):
        fds = FDSet()
        fds.add("company", "city", injective=False)
        assert not compatible({"id", "city"}, {"company"}, fds)
