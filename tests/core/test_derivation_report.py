"""Tests for derivation rendering and the text report."""

from __future__ import annotations

from repro.core import analyze, choose_strategies, render_report
from repro.core.derivation import render_all, render_chain, render_output
from tests.integration.test_case_studies import (
    ad_network_dataflow,
    wordcount_dataflow,
)


def test_render_output_shows_paper_notation():
    result = analyze(wordcount_dataflow(sealed=False))
    block = render_output(result.output("Count", "counts"))
    assert "Async OW[batch,word] (2) Taint" in block
    assert "Count.counts => Run" in block


def test_render_output_marks_replication():
    result = analyze(ad_network_dataflow("POOR"))
    block = render_output(result.output("Report", "response"))
    assert "Rep" in block
    assert "=> Inst" in block


def test_render_chain_walks_upstream_components():
    result = analyze(wordcount_dataflow(sealed=True))
    chain = render_chain(result, "db")
    # all three components appear, source first
    assert chain.index("Splitter.words") < chain.index("Count.counts")
    assert chain.index("Count.counts") < chain.index("Commit.db")
    assert "sink db => Async" in chain


def test_render_chain_on_external_input():
    result = analyze(wordcount_dataflow(sealed=True))
    text = render_chain(result, "tweets")
    assert "external input" in text


def test_render_all_has_one_block_per_output():
    result = analyze(wordcount_dataflow(sealed=False))
    blocks = render_all(result).split("\n\n")
    assert len(blocks) == len(result.outputs)


def test_report_contains_labels_verdict_and_plan():
    result = analyze(ad_network_dataflow("POOR"))
    plan = choose_strategies(result)
    report = render_report(result, plan)
    assert "Blazes analysis" in report
    assert "Diverge" in report
    assert "coordination required" in report
    assert "ordered delivery at Report" in report
    assert "Collapsed cycles" in report  # the cache self-edge


def test_report_with_derivations_section():
    result = analyze(wordcount_dataflow(sealed=True))
    report = render_report(result, derivations=True)
    assert "Derivations" in report
    assert "(p)" in report


def test_report_consistent_verdict():
    result = analyze(wordcount_dataflow(sealed=True))
    report = render_report(result)
    assert "consistent without coordination" in report
