"""Unit tests for the Figure 10 reconciliation procedure."""

from __future__ import annotations

import pytest

from repro.core.fd import FDSet
from repro.core.labels import (
    Async,
    Diverge,
    Inst,
    NDRead,
    Run,
    Seal,
    Taint,
)
from repro.core.reconciliation import is_protected, reconcile


class TestTaint:
    def test_taint_on_replicated_component_diverges(self):
        result = reconcile([Taint(), Async()], replicated=True)
        assert Diverge() in result.added
        assert result.merged == Diverge()
        assert result.tainted

    def test_taint_on_single_instance_is_cross_run(self):
        result = reconcile([Taint()], replicated=False)
        assert Run() in result.added
        assert result.merged == Run()


class TestNDRead:
    def test_unprotected_replicated_is_inst(self):
        result = reconcile([NDRead("g"), Async()], replicated=True)
        assert Inst() in result.added
        assert result.merged == Inst()
        assert result.unprotected_gates == {frozenset({"g"})}

    def test_unprotected_single_instance_is_run(self):
        result = reconcile([NDRead("g"), Async()], replicated=False)
        assert result.merged == Run()

    def test_protected_contributes_async(self):
        result = reconcile([NDRead("g"), Seal("g")], replicated=True)
        assert result.merged == Async()
        assert not result.unprotected_gates

    def test_protection_requires_compatibility(self):
        result = reconcile([NDRead("g"), Seal("other")], replicated=True)
        assert result.merged == Inst()

    def test_fd_compatible_seal_protects(self):
        fds = FDSet()
        fds.add("company", "symbol", injective=True)
        result = reconcile(
            [NDRead("symbol"), Seal("company")], replicated=True, fds=fds
        )
        assert result.merged == Async()


class TestIsProtected:
    def test_requires_a_seal(self):
        assert not is_protected(NDRead("g"), [NDRead("g")])
        assert not is_protected(NDRead("g"), [NDRead("g"), Async()])

    def test_async_co_labels_tolerated(self):
        labels = [NDRead("g"), Seal("g"), Async()]
        assert is_protected(NDRead("g"), labels)

    def test_nondeterministic_co_labels_defeat_protection(self):
        for bad in (Run(), Inst(), Diverge(), Taint(), NDRead("h")):
            labels = [NDRead("g"), Seal("g"), bad]
            assert not is_protected(NDRead("g"), labels), bad

    def test_incompatible_seal_defeats_protection(self):
        labels = [NDRead("g"), Seal("g"), Seal("x")]
        assert not is_protected(NDRead("g"), labels)

    def test_only_accepts_ndread(self):
        with pytest.raises(ValueError):
            is_protected(Async(), [])


class TestMergeBehaviour:
    def test_notes_explain_every_decision(self):
        result = reconcile([Taint(), NDRead("g")], replicated=True)
        assert len(result.notes) == 2
        assert any("Taint" in note for note in result.notes)
        assert any("unprotected" in note for note in result.notes)

    def test_empty_labels_merge_to_async(self):
        result = reconcile([], replicated=False)
        assert result.merged == Async()

    def test_multiple_ndreads_each_reconciled(self):
        result = reconcile([NDRead("a"), NDRead("b")], replicated=True)
        # neither protects the other
        assert Inst() in result.added
        assert result.unprotected_gates == {frozenset({"a"}), frozenset({"b"})}
