"""Unit tests for the stream-label lattice (paper Figure 8)."""

from __future__ import annotations

import pytest

from repro.core.labels import (
    Async,
    Diverge,
    Inst,
    Label,
    LabelKind,
    NDRead,
    Run,
    Seal,
    Taint,
    max_label,
    merge_labels,
)


def test_severity_ranking_matches_figure_8():
    assert NDRead("g").severity == 0
    assert Taint().severity == 0
    assert Seal("k").severity == 1
    assert Async().severity == 2
    assert Run().severity == 3
    assert Inst().severity == 4
    assert Diverge().severity == 5


def test_internal_labels_are_never_output():
    assert NDRead("g").is_internal
    assert Taint().is_internal
    for label in (Seal("k"), Async(), Run(), Inst(), Diverge()):
        assert not label.is_internal


def test_keyed_labels_require_keys():
    with pytest.raises(ValueError):
        Label(LabelKind.NDREAD)
    with pytest.raises(ValueError):
        Label(LabelKind.SEAL, frozenset())
    with pytest.raises(ValueError):
        Label(LabelKind.ASYNC, frozenset({"k"}))


def test_key_flattening_accepts_strings_and_iterables():
    assert Seal("a", "b").key == frozenset({"a", "b"})
    assert Seal(["a", "b"]).key == frozenset({"a", "b"})
    assert NDRead({"x"}, "y").key == frozenset({"x", "y"})


def test_labels_are_hashable_values():
    assert Seal("a", "b") == Seal("b", "a")
    assert len({Async(), Async(), Run()}) == 2


def test_string_rendering():
    assert str(Seal("b", "a")) == "Seal[a,b]"
    assert str(NDRead("g")) == "NDRead[g]"
    assert str(Async()) == "Async"


def test_merge_drops_internal_and_takes_max():
    merged = merge_labels([NDRead("g"), Taint(), Seal("k"), Async()])
    assert merged == Async()
    assert merge_labels([Seal("k"), Run()]) == Run()
    assert merge_labels([Inst(), Diverge()]) == Diverge()


def test_merge_of_only_internal_defaults_to_async():
    assert merge_labels([Taint()]) == Async()
    assert merge_labels([]) == Async()


def test_max_label_requires_nonempty():
    with pytest.raises(ValueError):
        max_label([])


def test_max_label_ties_break_deterministically():
    a, b = Seal("a"), Seal("b")
    assert max_label([a, b]) == max_label([b, a])
