"""Tests for the Section X design-pattern lints."""

from __future__ import annotations

from repro.core import CR, CW, OR, OW, Dataflow, analyze
from repro.core.patterns import (
    CACHE_OF_NONCONFLUENT,
    REDUNDANT_ORDERING,
    REPLICATED_NONCONFLUENT,
    WIDE_SEAL_QUORUM,
    lint_dataflow,
)
from tests.integration.test_case_studies import ad_network_dataflow


def kinds(findings):
    return {f.kind for f in findings}


def test_replicated_nonconfluent_component_flagged():
    flow = Dataflow("bad-rep")
    comp = flow.add_component("Agg", rep=True)
    comp.add_path("in", "out", OW("k"))
    flow.add_stream("in", dst=("Agg", "in"))
    flow.add_stream("out", src=("Agg", "out"))
    findings = lint_dataflow(analyze(flow))
    assert REPLICATED_NONCONFLUENT in kinds(findings)
    assert any("Agg" == f.component for f in findings)


def test_replicated_confluent_component_clean():
    flow = Dataflow("good-rep")
    comp = flow.add_component("Log", rep=True)
    comp.add_path("in", "out", CW())
    flow.add_stream("in", dst=("Log", "in"))
    flow.add_stream("out", src=("Log", "out"))
    findings = lint_dataflow(analyze(flow))
    assert REPLICATED_NONCONFLUENT not in kinds(findings)


def test_poor_ad_network_flags_cache_and_replication():
    """The paper's POOR configuration violates both placement patterns:
    the replicated Report is not confluent, and the cache tier consumes
    its Inst-labeled output."""
    result = analyze(ad_network_dataflow("POOR"))
    findings = lint_dataflow(result)
    assert REPLICATED_NONCONFLUENT in kinds(findings)
    assert CACHE_OF_NONCONFLUENT in kinds(findings)
    cache_findings = [f for f in findings if f.kind == CACHE_OF_NONCONFLUENT]
    assert cache_findings[0].component == "Cache"


def test_thresh_ad_network_is_clean():
    result = analyze(ad_network_dataflow("THRESH"))
    findings = lint_dataflow(result)
    assert findings == []


def test_campaign_sealed_is_clean_without_quorum_info():
    result = analyze(ad_network_dataflow("CAMPAIGN", seal=["campaign"]))
    assert lint_dataflow(result) == []


def test_wide_seal_quorum_flagged_with_producer_counts():
    result = analyze(ad_network_dataflow("CAMPAIGN", seal=["campaign"]))
    findings = lint_dataflow(result, producers_per_partition={"c": 10})
    assert WIDE_SEAL_QUORUM in kinds(findings)
    assert "10-way unanimous vote" in findings[-1].message


def test_narrow_seal_quorum_clean():
    result = analyze(ad_network_dataflow("CAMPAIGN", seal=["campaign"]))
    findings = lint_dataflow(result, producers_per_partition={"c": 1})
    assert WIDE_SEAL_QUORUM not in kinds(findings)


def test_findings_render_readably():
    result = analyze(ad_network_dataflow("POOR"))
    text = [str(f) for f in lint_dataflow(result)]
    assert any(text_line.startswith("[replicated-nonconfluent] Report") for text_line in text)
