"""Unit tests for the dataflow graph model."""

from __future__ import annotations

import pytest

from repro.core import CR, CW, OW, Dataflow
from repro.errors import DataflowError


def small_flow() -> Dataflow:
    flow = Dataflow("small")
    a = flow.add_component("A")
    a.add_path("in", "out", CR())
    b = flow.add_component("B", rep=True)
    b.add_path("in", "out", CW())
    flow.add_stream("src", dst=("A", "in"))
    flow.add_stream("mid", src=("A", "out"), dst=("B", "in"))
    flow.add_stream("sink", src=("B", "out"))
    return flow


def test_interfaces_derive_from_paths():
    flow = small_flow()
    a = flow.component("A")
    assert a.input_interfaces == ("in",)
    assert a.output_interfaces == ("out",)
    assert len(a.paths_into("out")) == 1
    assert len(a.paths_from("in")) == 1


def test_external_endpoints():
    flow = small_flow()
    assert [s.name for s in flow.external_inputs] == ["src"]
    assert [s.name for s in flow.external_outputs] == ["sink"]


def test_streams_into_and_from():
    flow = small_flow()
    assert [s.name for s in flow.streams_into("B")] == ["mid"]
    assert [s.name for s in flow.streams_from("A", "out")] == ["mid"]
    assert flow.streams_into("A", "nope") == ()


def test_duplicate_names_rejected():
    flow = small_flow()
    with pytest.raises(DataflowError):
        flow.add_component("A")
    with pytest.raises(DataflowError):
        flow.add_stream("mid", dst=("A", "in"))


def test_duplicate_path_rejected():
    flow = Dataflow()
    a = flow.add_component("A")
    a.add_path("in", "out", CR())
    with pytest.raises(DataflowError):
        a.add_path("in", "out", CW())


def test_fully_external_stream_rejected():
    flow = Dataflow()
    with pytest.raises(DataflowError):
        flow.add_stream("floating")


def test_validate_catches_unknown_interfaces():
    flow = Dataflow()
    a = flow.add_component("A")
    a.add_path("in", "out", CR())
    flow.add_stream("bad", dst=("A", "ghost"))
    with pytest.raises(DataflowError):
        flow.validate()


def test_validate_catches_unfed_inputs():
    flow = Dataflow()
    a = flow.add_component("A")
    a.add_path("in", "out", CR())
    flow.add_stream("out", src=("A", "out"))
    with pytest.raises(DataflowError):
        flow.validate()


def test_validate_catches_pathless_components():
    flow = Dataflow()
    flow.add_component("empty")
    with pytest.raises(DataflowError):
        flow.validate()


def test_unknown_lookups_raise():
    flow = small_flow()
    with pytest.raises(DataflowError):
        flow.component("ghost")
    with pytest.raises(DataflowError):
        flow.stream("ghost")


def test_seal_annotation_on_stream():
    flow = Dataflow()
    a = flow.add_component("A")
    a.add_path("in", "out", OW("k"))
    stream = flow.add_stream("src", dst=("A", "in"), seal=["k"])
    assert stream.seal_key == frozenset({"k"})
    assert "Seal[k]" in str(stream)


def test_empty_seal_rejected():
    flow = Dataflow()
    flow.add_component("A").add_path("in", "out", CR())
    with pytest.raises(DataflowError):
        flow.add_stream("src", dst=("A", "in"), seal=[])
