"""Semantic tests for the Figure 6 reporting queries."""

from __future__ import annotations

import pytest

from repro.apps.queries import QUERY_NAMES, make_report_module
from repro.bloom.runtime import BloomRuntime


def clicks_for(ad: str, n: int, campaign="c1", window=0):
    return [(campaign, window, ad, f"u{i}") for i in range(n)]


def run_query(query, clicks, requests, **kwargs):
    runtime = BloomRuntime(make_report_module(query, **kwargs))
    runtime.insert("click", clicks)
    runtime.insert("request", requests)
    return runtime.tick()["response"]


def test_thresh_emits_only_above_threshold():
    clicks = clicks_for("hot", 11) + clicks_for("cold", 2)
    responses = run_query(
        "THRESH", clicks, [("q1", "hot"), ("q2", "cold")], threshold=10
    )
    assert responses == {("q1", "hot")}


def test_poor_emits_only_below_threshold():
    clicks = clicks_for("hot", 11) + clicks_for("cold", 2)
    responses = run_query(
        "POOR", clicks, [("q1", "hot"), ("q2", "cold")], threshold=10
    )
    assert responses == {("q2", "cold")}


def test_window_counts_per_window():
    clicks = clicks_for("ad", 5, window=0) + clicks_for("ad", 1, window=1)
    # threshold 3: window 0 has 5 clicks (not poor), window 1 has 1 (poor)
    responses = run_query("WINDOW", clicks, [("q1", "ad")], threshold=3)
    # the ad is poor in window 1, so it is reported
    assert responses == {("q1", "ad")}


def test_campaign_counts_per_campaign():
    clicks = clicks_for("ad", 5, campaign="c1") + clicks_for("ad", 1, campaign="c2")
    responses = run_query("CAMPAIGN", clicks, [("q1", "ad")], threshold=3)
    assert responses == {("q1", "ad")}


def test_poor_answers_can_shrink_as_clicks_arrive():
    """POOR is nonmonotonic: an early answer is retracted by later clicks
    — the root of the paper's replica-divergence anomaly."""
    runtime = BloomRuntime(make_report_module("POOR", threshold=10))
    runtime.insert("click", clicks_for("ad", 2))
    runtime.insert("request", [("q1", "ad")])
    first = runtime.tick()["response"]
    assert first == {("q1", "ad")}
    runtime.insert("click", clicks_for("ad", 20))
    runtime.insert("request", [("q1", "ad")])
    second = runtime.tick()["response"]
    assert second == frozenset()


def test_thresh_answers_never_retract():
    runtime = BloomRuntime(make_report_module("THRESH", threshold=5))
    runtime.insert("click", clicks_for("ad", 6))
    runtime.insert("request", [("q1", "ad")])
    first = runtime.tick()["response"]
    assert first == {("q1", "ad")}
    runtime.insert("click", clicks_for("ad", 100))
    runtime.insert("request", [("q1", "ad")])
    second = runtime.tick()["response"]
    assert second == {("q1", "ad")}


@pytest.mark.parametrize("query", QUERY_NAMES)
def test_every_query_module_builds(query):
    module = make_report_module(query)
    assert {d.name for d in module.inputs} == {"click", "request"}
    assert [d.name for d in module.outputs] == ["response"]


def test_unknown_query_rejected():
    with pytest.raises(ValueError):
        make_report_module("MEDIAN")
