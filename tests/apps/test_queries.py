"""Semantic tests for the Figure 6 reporting queries."""

from __future__ import annotations

import pytest

from repro.apps.queries import QUERY_NAMES, make_report_module
from repro.bloom.runtime import BloomRuntime


def clicks_for(ad: str, n: int, campaign="c1", window=0):
    return [(campaign, window, ad, f"u{i}") for i in range(n)]


def run_query(query, clicks, requests, **kwargs):
    runtime = BloomRuntime(make_report_module(query, **kwargs))
    runtime.insert("click", clicks)
    runtime.insert("request", requests)
    return runtime.tick()["response"]


def test_thresh_emits_only_above_threshold():
    clicks = clicks_for("hot", 11) + clicks_for("cold", 2)
    responses = run_query(
        "THRESH", clicks, [("q1", "hot"), ("q2", "cold")], threshold=10
    )
    assert responses == {("q1", "hot")}


def test_poor_emits_only_below_threshold():
    clicks = clicks_for("hot", 11) + clicks_for("cold", 2)
    responses = run_query(
        "POOR", clicks, [("q1", "hot"), ("q2", "cold")], threshold=10
    )
    assert responses == {("q2", "cold")}


def test_window_counts_per_window():
    clicks = clicks_for("ad", 5, window=0) + clicks_for("ad", 1, window=1)
    # threshold 3: window 0 has 5 clicks (not poor), window 1 has 1 (poor)
    responses = run_query("WINDOW", clicks, [("q1", "ad")], threshold=3)
    # the ad is poor in window 1, so it is reported
    assert responses == {("q1", "ad")}


def test_campaign_counts_per_campaign():
    clicks = clicks_for("ad", 5, campaign="c1") + clicks_for("ad", 1, campaign="c2")
    responses = run_query("CAMPAIGN", clicks, [("q1", "ad")], threshold=3)
    assert responses == {("q1", "ad")}


def test_poor_answers_can_shrink_as_clicks_arrive():
    """POOR is nonmonotonic: an early answer is retracted by later clicks
    — the root of the paper's replica-divergence anomaly."""
    runtime = BloomRuntime(make_report_module("POOR", threshold=10))
    runtime.insert("click", clicks_for("ad", 2))
    runtime.insert("request", [("q1", "ad")])
    first = runtime.tick()["response"]
    assert first == {("q1", "ad")}
    runtime.insert("click", clicks_for("ad", 20))
    runtime.insert("request", [("q1", "ad")])
    second = runtime.tick()["response"]
    assert second == frozenset()


def test_thresh_answers_never_retract():
    runtime = BloomRuntime(make_report_module("THRESH", threshold=5))
    runtime.insert("click", clicks_for("ad", 6))
    runtime.insert("request", [("q1", "ad")])
    first = runtime.tick()["response"]
    assert first == {("q1", "ad")}
    runtime.insert("click", clicks_for("ad", 100))
    runtime.insert("request", [("q1", "ad")])
    second = runtime.tick()["response"]
    assert second == {("q1", "ad")}


@pytest.mark.parametrize("query", QUERY_NAMES)
def test_every_query_module_builds(query):
    module = make_report_module(query)
    assert {d.name for d in module.inputs} == {"click", "request"}
    assert [d.name for d in module.outputs] == ["response"]


def test_unknown_query_rejected():
    with pytest.raises(ValueError):
        make_report_module("MEDIAN")


class TestRegisteredQueryApps:
    """Each Figure 6 query is a registered app with the three regimes."""

    def test_all_four_apps_registered(self):
        from repro.api import get_app
        from repro.apps.queries import QUERY_MATRIX_APPS

        assert set(QUERY_MATRIX_APPS.values()) == set(QUERY_NAMES)
        for name in QUERY_MATRIX_APPS:
            app = get_app(name)
            assert app.strategies == ("uncoordinated", "sealed", "ordered")
            assert app.auditable

    def test_predicted_labels_reproduce_figure6(self):
        from repro.api import get_app

        predicted = {
            (query, strategy): str(
                get_app(f"q-{query.lower()}").predicted_label(strategy)
            )
            for query in QUERY_NAMES
            for strategy in ("uncoordinated", "sealed", "ordered")
        }
        # THRESH is confluent; the others diverge uncoordinated and are
        # repaired to Async by their seal key or by the sequencer
        for strategy in ("uncoordinated", "sealed", "ordered"):
            assert predicted[("THRESH", strategy)] == "Async"
        for query in ("POOR", "WINDOW", "CAMPAIGN"):
            assert predicted[(query, "uncoordinated")] == "Diverge"
            assert predicted[(query, "sealed")] == "Async"
            assert predicted[(query, "ordered")] == "Async"

    def test_sealed_strategy_uses_the_query_seal_key(self):
        from repro.api import get_app
        from repro.apps.queries import QUERY_MATRIX_APPS, QUERY_SEAL_KEYS

        for name, query in QUERY_MATRIX_APPS.items():
            spec = get_app(name).strategy_spec("sealed")
            assert spec.seals == {"c": [QUERY_SEAL_KEYS[query]]}
            assert spec.run_params["seal_key"] == QUERY_SEAL_KEYS[query]

    def test_ordered_plan_installs_the_sequencer_at_report(self):
        from repro.api import get_app
        from repro.core.strategy import OrderedStrategy

        plan = get_app("q-poor").plan("ordered")
        strategy = plan.strategy_for("Report")
        assert isinstance(strategy, OrderedStrategy)
        assert strategy.topic == "report.inputs"
        assert plan.uses_global_order

    def test_runner_maps_sealed_to_the_seal_regime(self):
        from repro.api import get_app

        outcome = get_app("q-window").run("sealed", seed=3)
        assert outcome.result.strategy == "seal"
        assert outcome.metrics["processed"] == outcome.metrics["total_entries"]
        assert outcome.metrics["replicas_agree"]
