"""Convergence vs confluence on the LWW key/value store (Section III-B)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kvs import LwwKvs, SnapshotCache, kvs_dataflow, run_kvs
from repro.bloom.analysis import analyze_module
from repro.bloom.runtime import BloomRuntime
from repro.core import LabelKind, OrderStrategy, SealStrategy, analyze, choose_strategies
from repro.core.annotations import AnnotationKind

writes = st.lists(
    st.tuples(
        st.sampled_from(["x", "y"]),
        st.integers(0, 9),
        st.integers(0, 5),
    ),
    min_size=1,
    max_size=12,
)


def final_store(rows, *, one_per_tick: bool) -> dict:
    runtime = BloomRuntime(LwwKvs())
    if one_per_tick:
        for row in rows:
            runtime.insert("put", [row])
            runtime.tick()
    else:
        runtime.insert("put", rows)
        runtime.tick()
    module = runtime.module
    return {
        key: module.current_value(runtime, key)
        for key in {row[0] for row in rows}
    }


class TestConvergence:
    @settings(max_examples=40)
    @given(writes, st.permutations(list(range(12))))
    def test_final_state_is_order_insensitive(self, rows, order):
        """Convergence: the winner per key depends only on the write set."""
        permuted = [rows[i] for i in order if i < len(rows)]
        assert final_store(rows, one_per_tick=True) == final_store(
            permuted, one_per_tick=True
        )

    @settings(max_examples=40)
    @given(writes)
    def test_batched_equals_trickled(self, rows):
        assert final_store(rows, one_per_tick=False) == final_store(
            rows, one_per_tick=True
        )


class TestNonConfluence:
    def test_get_snapshots_depend_on_interleaving(self):
        """Confluence fails: a GET racing two PUTs reads different
        snapshots under different interleavings."""

        def run(first, second):
            runtime = BloomRuntime(LwwKvs())
            runtime.insert("put", [first])
            runtime.tick()
            runtime.insert("get", [("q", "x")])
            out_mid = runtime.tick()["getr"]
            runtime.insert("put", [second])
            runtime.tick()
            return out_mid

        a = ("x", 1, 10)
        b = ("x", 2, 20)
        assert run(a, b) != run(b, a)

    def test_cache_pins_divergent_snapshots(self):
        """Two cache replicas fed different snapshots diverge forever."""
        snapshots = [("q", "x", 1)], [("q", "x", 2)]
        caches = []
        for snapshot in snapshots:
            runtime = BloomRuntime(SnapshotCache())
            runtime.insert("response", snapshot)
            runtime.tick()
            runtime.tick()
            caches.append(runtime.read("entries"))
        assert caches[0] != caches[1]  # permanent: entries is a table


class TestBlazesDiagnosis:
    def test_whitebox_extracts_per_key_gate(self):
        analysis = analyze_module(LwwKvs())
        put_path = analysis.annotation_for("put", "getr")
        get_path = analysis.annotation_for("get", "getr")
        assert put_path.kind is AnnotationKind.OR
        assert put_path.gate == frozenset({"key"})
        assert get_path.kind is AnnotationKind.OR

    def test_unsealed_kvs_cache_dataflow_diverges(self):
        result = analyze(kvs_dataflow())
        assert result.label_of("responses").kind is LabelKind.INST
        assert result.label_of("cached").kind is LabelKind.DIVERGE
        plan = choose_strategies(result)
        assert isinstance(plan.strategy_for("Store"), OrderStrategy)

    def test_per_key_seal_discharges_coordination(self):
        result = analyze(kvs_dataflow(seal_puts_on_key=True))
        assert result.label_of("cached").kind is LabelKind.ASYNC
        plan = choose_strategies(result)
        assert isinstance(plan.strategy_for("Store"), SealStrategy)


class TestKvsCluster:
    """The runnable two-tier deployment (chaos-audit workload)."""

    def test_sealed_run_is_exactly_once_and_deterministic(self):
        results = [run_kvs("sealed", seed=seed, workload_seed=7) for seed in (7, 11)]
        for result in results:
            assert result.caches_agree
            assert result.cache_entries("cache0") == result.ground_truth_cache()

    def test_uncoordinated_stores_converge_but_caches_diverge(self):
        result = run_kvs("uncoordinated", seed=7, workload_seed=7)
        # convergence without confluence, Section III-B: the LWW stores
        # reach one state while the caches pin divergent snapshots
        assert result.stores_converged
        assert not result.caches_agree

    def test_sealed_defers_gets_until_key_complete(self):
        result = run_kvs("sealed", seed=7, workload_seed=7)
        winners = result.workload.winners()
        for reqid, key, val in result.cache_entries("cache0"):
            assert val == winners[key], (reqid, key)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            run_kvs("chaotic")


class TestOrderedKvs:
    """Section V-B2 applied: the sequencer restores replica agreement."""

    def test_ordered_replicas_agree_everywhere(self):
        result = run_kvs("ordered", seed=7, workload_seed=7)
        assert result.stores_converged
        assert result.caches_agree
        histories = {result.responses(node) for node in result.store_nodes}
        assert len(histories) == 1

    def test_ordered_answers_reflect_the_recorded_order_not_final_winners(self):
        """Consistent but not exactly-once: gets sequenced mid-stream read
        the winner *at their slot*, so the committed cache deviates from
        the final-winner ground truth — the Async residue of ordering."""
        result = run_kvs("ordered", seed=7, workload_seed=7)
        order = result.sequencer_order()
        assert len(order) == result.workload.total_writes + result.workload.gets
        winners: dict = {}
        expected = set()
        for kind, row in order:
            if kind == "put":
                key, val, ts = row
                if winners.get(key) is None or (ts, val) > winners[key]:
                    winners[key] = (ts, val)
            else:
                reqid, key = row
                if key in winners:
                    expected.add((reqid, key, winners[key][1]))
        for cache in result.cache_nodes:
            assert result.cache_entries(cache) == frozenset(expected)
        assert frozenset(expected) != result.ground_truth_cache()

    def test_different_seeds_pick_different_orders(self):
        orders = {
            run_kvs("ordered", seed=seed, workload_seed=7).sequencer_order()
            for seed in (7, 11)
        }
        assert len(orders) == 2
