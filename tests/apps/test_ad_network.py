"""Integration tests for the ad-tracking network (paper Section VIII-B)."""

from __future__ import annotations

import pytest

from repro.apps.ad_network import AdWorkload, run_ad_network

SMALL = AdWorkload(
    ad_servers=2,
    entries_per_server=100,
    batch_size=25,
    sleep=0.1,
    campaigns=6,
    requests=6,
    report_replicas=3,
)


@pytest.fixture(scope="module")
def runs():
    """One run per strategy, shared across assertions (simulation is
    deterministic, so sharing is safe)."""
    return {
        strategy: run_ad_network(strategy, workload=SMALL, seed=1)
        for strategy in ("uncoordinated", "ordered", "seal", "independent-seal")
    }


def test_every_strategy_processes_all_records(runs):
    for strategy, result in runs.items():
        for node in result.report_nodes:
            assert result.processed_count(node) == SMALL.total_entries, strategy


def test_ordered_is_slowest(runs):
    ordered = runs["ordered"].completion_time
    for strategy in ("uncoordinated", "seal", "independent-seal"):
        assert ordered > runs[strategy].completion_time


def test_seal_strategies_track_uncoordinated(runs):
    """Both seal variants finish within a small factor of uncoordinated."""
    base = runs["uncoordinated"].completion_time
    assert runs["seal"].completion_time < base * 1.5
    assert runs["independent-seal"].completion_time < base * 1.5


def test_ordered_and_sealed_replicas_agree(runs):
    assert runs["ordered"].replicas_agree
    assert runs["seal"].replicas_agree
    assert runs["independent-seal"].replicas_agree


def test_registry_lookups_once_per_partition_per_replica(runs):
    expected = SMALL.campaigns * SMALL.report_replicas
    assert runs["seal"].registry_lookups == expected
    assert runs["independent-seal"].registry_lookups == expected


def test_processed_series_is_monotone_and_complete(runs):
    for strategy, result in runs.items():
        series = result.processed_series(bucket=0.1)
        counts = [count for _, count in series]
        assert counts == sorted(counts), strategy
        assert counts[-1] == SMALL.total_entries, strategy


def test_uncoordinated_can_return_inconsistent_answers():
    """The paper 'confirmed by observation that certain queries posed to
    multiple reporting server replicas returned inconsistent results'.
    With requests racing clicks, some seed exhibits disagreement."""
    workload = AdWorkload(
        ad_servers=2,
        entries_per_server=120,
        batch_size=10,
        sleep=0.02,
        campaigns=4,
        requests=25,
        report_replicas=3,
    )
    saw_disagreement = False
    for seed in range(8):
        result = run_ad_network(
            "uncoordinated", workload=workload, seed=seed, query="POOR",
            query_kwargs={"threshold": 10},
        )
        if not result.replicas_agree:
            saw_disagreement = True
            break
    assert saw_disagreement, "no seed exhibited replica disagreement"


def test_sealed_run_is_deterministic_across_delivery_orders():
    """Seal-coordinated responses are identical for different network
    interleavings — the determinism Blazes certifies for CAMPAIGN."""
    reference = None
    for seed in (3, 4, 5):
        result = run_ad_network(
            "seal", workload=SMALL, seed=seed, workload_seed=1,
            query="CAMPAIGN", query_kwargs={"threshold": 100},
        )
        # compare click tables (the processed log) across replicas
        tables = [
            result.cluster.node(n).read("clicks") for n in result.report_nodes
        ]
        assert tables[0] == tables[1] == tables[2]
        if reference is None:
            reference = tables[0]
        else:
            assert tables[0] == reference


def test_doubling_servers_hurts_ordered_more_than_uncoordinated():
    """The paper's scaling observation: doubling ad servers had little
    effect on the uncoordinated run but tripled the ordered one."""
    small = AdWorkload(ad_servers=2, entries_per_server=80, batch_size=20,
                       sleep=0.1, campaigns=4, requests=4)
    large = AdWorkload(ad_servers=4, entries_per_server=80, batch_size=20,
                       sleep=0.1, campaigns=4, requests=4)
    unc_small = run_ad_network("uncoordinated", workload=small, seed=2)
    unc_large = run_ad_network("uncoordinated", workload=large, seed=2)
    ord_small = run_ad_network("ordered", workload=small, seed=2)
    ord_large = run_ad_network("ordered", workload=large, seed=2)
    unc_growth = unc_large.completion_time / unc_small.completion_time
    ord_growth = ord_large.completion_time / ord_small.completion_time
    assert ord_growth > unc_growth
    assert ord_growth > 1.5


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        run_ad_network("chaos", workload=SMALL)


def test_independent_seal_rejects_fewer_campaigns_than_servers():
    """Idle servers would silently understate the offered load."""
    from repro.errors import SimulationError

    workload = AdWorkload(ad_servers=4, campaigns=2)
    with pytest.raises(SimulationError, match="campaigns >= ad_servers"):
        run_ad_network("independent-seal", workload=workload)


class TestSealKeys:
    """Seal strategies generalized over the Figure 6 partition columns."""

    WORKLOAD = AdWorkload(
        ad_servers=2,
        entries_per_server=80,
        batch_size=20,
        sleep=0.1,
        campaigns=4,
        ads_per_campaign=3,
        requests=4,
        report_replicas=2,
    )

    def test_window_seal_processes_everything_deterministically(self):
        tables = []
        for seed in (3, 4):
            result = run_ad_network(
                "seal", workload=self.WORKLOAD, seed=seed, workload_seed=1,
                query="WINDOW", seal_key="window",
            )
            for node in result.report_nodes:
                assert result.processed_count(node) == self.WORKLOAD.total_entries
            assert result.replicas_agree
            tables.append(result.cluster.node("report0").read("clicks"))
        assert tables[0] == tables[1]

    def test_window_seal_registers_window_partitions(self):
        result = run_ad_network(
            "seal", workload=self.WORKLOAD, seed=3, query="WINDOW",
            seal_key="window",
        )
        zk = result.cluster.network.process("zookeeper")
        for window in range(4):
            producers = zk.znode(f"producers/{window!r}")
            assert producers == ["adserver0", "adserver1"], window

    def test_id_seal_covers_poor_query(self):
        result = run_ad_network(
            "seal", workload=self.WORKLOAD, seed=3, query="POOR",
            seal_key="id", query_kwargs={"threshold": 10},
        )
        for node in result.report_nodes:
            assert result.processed_count(node) == self.WORKLOAD.total_entries
        assert result.replicas_agree
        # the registry holds only ads that are actually produced, and
        # only by the servers that produce them
        zk = result.cluster.network.process("zookeeper")
        produced = set()
        for name in ("adserver0", "adserver1"):
            produced |= result.cluster.network.process(name).seal_partitions
        for ad in produced:
            assert zk.znode(f"producers/{ad!r}"), ad

    def test_unknown_seal_key_rejected(self):
        with pytest.raises(ValueError, match="seal_key"):
            run_ad_network("seal", workload=SMALL, seal_key="uid")

    def test_independent_seal_requires_campaign_key(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="seal_key"):
            run_ad_network(
                "independent-seal", workload=SMALL, seal_key="window"
            )


class TestOrderedDecisionLog:
    """The ordered strategy records its sequencer order in the trace."""

    def test_order_recorded_and_complete(self):
        result = run_ad_network("ordered", workload=SMALL, seed=1)
        order = result.sequencer_order()
        assert len(order) == SMALL.total_entries + SMALL.requests
        kinds = {kind for kind, _row in order}
        assert kinds == {"click", "request"}

    def test_other_strategies_record_nothing(self):
        result = run_ad_network("seal", workload=SMALL, seed=1)
        assert result.sequencer_order() == ()

    def test_replicas_share_emitted_history_under_threshold_crossing(self):
        """Per-item timesteps: ordered replicas emit identical response
        histories even when counts cross the query threshold mid-run."""
        for seed in (1, 2, 3):
            result = run_ad_network(
                "ordered", workload=SMALL, seed=seed, workload_seed=1,
                query="POOR", query_kwargs={"threshold": 4},
            )
            histories = {
                result.responses(node) for node in result.report_nodes
            }
            assert len(histories) == 1, seed


class TestProducerReplicas:
    """Seal producer sets derived from the actual replica assignment."""

    REPLICATED = AdWorkload(
        ad_servers=2,
        entries_per_server=100,
        batch_size=25,
        sleep=0.1,
        campaigns=6,
        requests=4,
        report_replicas=2,
        producer_replicas=3,
    )

    def test_scaled_out_producers_process_all_records(self):
        for strategy in ("seal", "independent-seal"):
            result = run_ad_network(strategy, workload=self.REPLICATED, seed=4)
            for node in result.report_nodes:
                assert (
                    result.processed_count(node) == self.REPLICATED.total_entries
                ), strategy
            assert result.replicas_agree, strategy

    def test_registry_entries_are_task_level(self):
        """The znode producer set for a campaign names replica tasks, one
        per producing server, chosen by the shared stable-hash routing."""
        result = run_ad_network("seal", workload=self.REPLICATED, seed=4)
        zk = result.cluster.network.process("zookeeper")
        for campaign in range(self.REPLICATED.campaigns):
            producers = zk.znode(f"producers/{f'c{campaign}'!r}")
            assert producers is not None
            assert len(producers) == self.REPLICATED.ad_servers
            for producer in producers:
                server, _, replica = producer.partition("#")
                assert server.startswith("adserver")
                assert 0 <= int(replica) < self.REPLICATED.producer_replicas

    def test_single_replica_layout_matches_seed_behavior(self):
        result = run_ad_network("seal", workload=SMALL, seed=1)
        zk = result.cluster.network.process("zookeeper")
        assert zk.znode("producers/'c0'") == ["adserver0", "adserver1"]
