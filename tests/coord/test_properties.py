"""Property-based tests for the coordination substrates."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coord.ordering import OrderedInbox
from repro.coord.sealing import SealManager


class TestOrderedInboxProperties:
    @given(st.permutations(list(range(30))))
    def test_any_permutation_releases_in_order(self, seqs):
        out = []
        inbox = OrderedInbox(out.append)
        for seq in seqs:
            inbox.offer(seq, seq)
        assert out == sorted(seqs)
        assert inbox.buffered == 0
        assert inbox.applied == len(seqs)

    @given(
        st.lists(st.integers(min_value=0, max_value=19), min_size=1, max_size=60)
    )
    def test_duplicates_never_double_apply(self, seqs):
        out = []
        inbox = OrderedInbox(out.append)
        for seq in seqs:
            inbox.offer(seq, seq)
        assert len(out) == len(set(out))
        assert out == sorted(set(out))
        # everything below the first gap is applied
        distinct = set(seqs)
        expected = 0
        while expected in distinct:
            expected += 1
        assert inbox.next_seq == expected

    @given(st.permutations(list(range(20))), st.integers(0, 2**16))
    def test_release_count_sums_to_total(self, seqs, _salt):
        inbox = OrderedInbox(lambda v: None)
        released = sum(inbox.offer(seq, seq) for seq in seqs)
        assert released == len(seqs)


class TestSealManagerProperties:
    @settings(max_examples=40)
    @given(
        st.integers(min_value=1, max_value=4),   # producers
        st.integers(min_value=1, max_value=5),   # partitions
        st.integers(min_value=0, max_value=6),   # records per (prod, part)
        st.randoms(use_true_random=False),
    )
    def test_each_partition_releases_exactly_once_with_all_records(
        self, n_producers, n_partitions, per_pair, rng
    ):
        producers = [f"p{i}" for i in range(n_producers)]
        released: dict = {}
        manager = SealManager(
            "s",
            lambda partition, records: released.__setitem__(partition, records),
            producers_for=lambda partition: frozenset(producers),
        )
        # build the event schedule: per-producer records then a seal, then
        # interleave across producers in a random but per-producer-ordered way
        events = []
        for producer in producers:
            per_producer = []
            for partition in range(n_partitions):
                for record in range(per_pair):
                    per_producer.append(("data", partition, (producer, record), producer))
                per_producer.append(("seal", partition, None, producer))
            events.append(per_producer)
        merged = []
        cursors = [0] * n_producers
        while any(c < len(e) for c, e in zip(cursors, events)):
            choices = [i for i, c in enumerate(cursors) if c < len(events[i])]
            pick = rng.choice(choices)
            merged.append(events[pick][cursors[pick]])
            cursors[pick] += 1
        for kind, partition, payload, producer in merged:
            if kind == "data":
                manager.on_data(partition, payload, producer)
            else:
                manager.on_seal(partition, producer)
        assert set(released) == set(range(n_partitions))
        for partition, records in released.items():
            assert len(records) == n_producers * per_pair
        assert manager.pending_partitions == frozenset()

    @given(st.integers(min_value=2, max_value=5))
    def test_no_release_before_unanimity(self, n_producers):
        producers = [f"p{i}" for i in range(n_producers)]
        released = []
        manager = SealManager(
            "s",
            lambda partition, records: released.append(partition),
            producers_for=lambda partition: frozenset(producers),
        )
        manager.on_data("k", "r", producers[0])
        for producer in producers[:-1]:
            manager.on_seal("k", producer)
            assert released == []
        manager.on_seal("k", producers[-1])
        assert released == ["k"]
