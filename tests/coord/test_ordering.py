"""Unit tests for total-order delivery (the ordering strategy)."""

from __future__ import annotations

import random

from repro.coord import OrderedConsumer, OrderedInbox, ZkClient, install_zookeeper
from repro.sim import LatencyModel, Network, Process, Simulator


class TestOrderedInbox:
    def test_in_order_deliveries_release_immediately(self):
        out = []
        inbox = OrderedInbox(out.append)
        for seq in range(5):
            assert inbox.offer(seq, seq) == 1
        assert out == [0, 1, 2, 3, 4]

    def test_gap_holds_back_later_deliveries(self):
        out = []
        inbox = OrderedInbox(out.append)
        inbox.offer(1, "b")
        inbox.offer(2, "c")
        assert out == []
        assert inbox.buffered == 2
        released = inbox.offer(0, "a")
        assert released == 3
        assert out == ["a", "b", "c"]

    def test_duplicates_apply_once(self):
        out = []
        inbox = OrderedInbox(out.append)
        inbox.offer(0, "a")
        inbox.offer(0, "a")
        inbox.offer(1, "b")
        inbox.offer(1, "b")
        assert out == ["a", "b"]
        assert inbox.duplicates == 2

    def test_random_permutation_always_releases_in_order(self):
        rng = random.Random(9)
        for _ in range(25):
            n = rng.randrange(1, 40)
            seqs = list(range(n))
            rng.shuffle(seqs)
            out = []
            inbox = OrderedInbox(out.append)
            for seq in seqs:
                inbox.offer(seq, seq)
            assert out == list(range(n))
            assert inbox.buffered == 0


class Replica(Process):
    """A replica applying ordered deliveries to a simple log."""

    def __init__(self, name):
        super().__init__(name)
        self.consumer = OrderedConsumer()
        self.log = []
        self.consumer.on_topic("ops", self.log.append)

    def recv(self, msg):
        self.consumer.handle(msg)


class Producer(Process):
    def __init__(self, name):
        super().__init__(name)
        self.zk = ZkClient(self)

    def recv(self, msg):
        self.zk.handle(msg)


def test_replicas_apply_identical_logs_despite_jitter():
    for seed in range(5):
        sim = Simulator(seed=seed)
        network = Network(sim, latency=LatencyModel(0.001, 0.02))
        zk = install_zookeeper(network)
        replicas = [Replica(f"r{i}") for i in range(3)]
        for replica in replicas:
            network.register(replica)
            zk.subscribe("ops", replica.name)
        producers = [Producer(f"p{i}") for i in range(4)]
        for producer in producers:
            network.register(producer)

        def burst():
            for producer in producers:
                for i in range(10):
                    producer.zk.submit("ops", (producer.name, i))

        sim.schedule(0.0, burst)
        sim.run()
        logs = [replica.log for replica in replicas]
        assert logs[0] == logs[1] == logs[2]
        assert len(logs[0]) == 40
