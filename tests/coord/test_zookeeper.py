"""Unit tests for the Zookeeper-like sequencer and znode store."""

from __future__ import annotations

from repro.coord import ZkClient, install_zookeeper
from repro.coord.zookeeper import DELIVER
from repro.sim import LatencyModel, Network, Process, Simulator


class Subscriber(Process):
    def __init__(self, name):
        super().__init__(name)
        self.deliveries = []

    def recv(self, msg):
        assert msg.kind == DELIVER
        self.deliveries.append(msg.payload)


class Client(Process):
    def __init__(self, name):
        super().__init__(name)
        self.zk = ZkClient(self)
        self.got = []

    def recv(self, msg):
        if self.zk.handle(msg):
            return

    def on_start(self):
        pass


def build(seed=0):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=LatencyModel(0.001, 0.002))
    zk = install_zookeeper(network)
    return sim, network, zk


def test_sequencer_assigns_dense_sequence_numbers():
    sim, network, zk = build()
    sub = Subscriber("sub")
    network.register(sub)
    zk.subscribe("t", "sub")
    client = Client("c1")
    network.register(client)
    sim.schedule(0.0, lambda: [client.zk.submit("t", f"v{i}") for i in range(5)])
    sim.run()
    seqs = sorted(seq for _, seq, _ in sub.deliveries)
    assert seqs == list(range(5))
    assert zk.stats.submits == 5
    assert zk.stats.deliveries == 5


def test_all_subscribers_get_every_delivery():
    sim, network, zk = build()
    subs = [Subscriber(f"s{i}") for i in range(3)]
    for sub in subs:
        network.register(sub)
        zk.subscribe("t", sub.name)
    client = Client("c1")
    network.register(client)
    sim.schedule(0.0, lambda: [client.zk.submit("t", i) for i in range(4)])
    sim.run()
    for sub in subs:
        assert sorted(v for _, _, v in sub.deliveries) == [0, 1, 2, 3]
    # every replica observes the same (seq -> value) assignment
    orders = [
        {seq: v for _, seq, v in sub.deliveries} for sub in subs
    ]
    assert orders[0] == orders[1] == orders[2]


def test_topics_have_independent_sequences():
    sim, network, zk = build()
    sub = Subscriber("sub")
    network.register(sub)
    zk.subscribe("t1", "sub")
    zk.subscribe("t2", "sub")
    client = Client("c1")
    network.register(client)
    sim.schedule(0.0, lambda: (client.zk.submit("t1", "a"), client.zk.submit("t2", "b")))
    sim.run()
    by_topic = {t: seq for t, seq, _ in sub.deliveries}
    assert by_topic == {"t1": 0, "t2": 0}


def test_writes_serialize_through_the_leader():
    """N writes take at least N * write_service virtual seconds."""
    sim, network, zk = build()
    sub = Subscriber("sub")
    network.register(sub)
    zk.subscribe("t", "sub")
    client = Client("c1")
    network.register(client)
    n = 50
    sim.schedule(0.0, lambda: [client.zk.submit("t", i) for i in range(n)])
    finish = sim.run()
    assert finish >= n * zk.write_service


def test_znode_get_set_round_trip():
    sim, network, zk = build()
    client = Client("c1")
    network.register(client)

    def kick():
        # the network is unordered: sequence the read through the write ack
        client.zk.set_znode(
            "path/x",
            [1, 2, 3],
            callback=lambda: client.zk.get_znode("path/x", client.got.append),
        )

    sim.schedule(0.0, kick)
    sim.run()
    assert client.got == [[1, 2, 3]]
    assert zk.stats.reads == 1
    assert zk.stats.writes == 1


def test_get_of_missing_znode_returns_none():
    sim, network, zk = build()
    client = Client("c1")
    network.register(client)
    sim.schedule(0.0, lambda: client.zk.get_znode("nope", client.got.append))
    sim.run()
    assert client.got == [None]


def test_preload_znode_visible_to_clients():
    sim, network, zk = build()
    zk.preload_znode("producers/p1", ["a", "b"])
    client = Client("c1")
    network.register(client)
    sim.schedule(0.0, lambda: client.zk.get_znode("producers/p1", client.got.append))
    sim.run()
    assert client.got == [["a", "b"]]
    assert zk.znode("producers/p1") == ["a", "b"]
