"""Unit tests for the seal protocol."""

from __future__ import annotations

import pytest

from repro.coord import SealManager, SealedStreamProducer, ZkClient, install_zookeeper
from repro.errors import SimulationError
from repro.sim import LatencyModel, Network, Process, Simulator


class Producer(Process):
    def __init__(self, name, stream="c"):
        super().__init__(name)
        self.out = SealedStreamProducer(self, stream)

    def recv(self, msg):
        pass


class Consumer(Process):
    """Releases complete partitions into ``self.completed``."""

    def __init__(self, name, producers_for=None, use_zk=False, stream="c"):
        super().__init__(name)
        self.completed: list[tuple[object, list]] = []
        zk_client = ZkClient(self) if use_zk else None
        self.zk_client = zk_client
        self.seals = SealManager(
            stream,
            lambda partition, records: self.completed.append((partition, records)),
            producers_for=producers_for,
            zk_client=zk_client,
        )

    def recv(self, msg):
        if self.zk_client is not None and self.zk_client.handle(msg):
            return
        self.seals.handle(msg)


def build(seed=0, **net_kwargs):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=LatencyModel(0.001, 0.002), **net_kwargs)
    return sim, network


def test_single_producer_partition_releases_on_seal():
    sim, network = build()
    producer = Producer("p0")
    consumer = Consumer("cons", producers_for=lambda partition: frozenset({"p0"}))
    network.register(producer)
    network.register(consumer)

    def drive():
        producer.out.send_record("cons", "k1", "r1")
        producer.out.send_record("cons", "k1", "r2")
        producer.out.seal("cons", "k1")

    sim.schedule(0.0, drive)
    sim.run()
    assert len(consumer.completed) == 1
    partition, records = consumer.completed[0]
    assert partition == "k1"
    assert sorted(records) == ["r1", "r2"]


def test_multi_producer_partition_waits_for_unanimous_vote():
    sim, network = build()
    producers = [Producer(f"p{i}") for i in range(3)]
    names = frozenset(p.name for p in producers)
    consumer = Consumer("cons", producers_for=lambda partition: names)
    for producer in producers:
        network.register(producer)
    network.register(consumer)

    def drive():
        for producer in producers:
            producer.out.send_record("cons", "k", f"r-{producer.name}")
        producers[0].out.seal("cons", "k")
        producers[1].out.seal("cons", "k")

    sim.schedule(0.0, drive)
    sim.run()
    assert consumer.completed == []  # one vote missing
    sim.schedule(0.0, lambda: producers[2].out.seal("cons", "k"))
    sim.run()
    assert len(consumer.completed) == 1
    assert len(consumer.completed[0][1]) == 3


def test_partitions_release_independently():
    sim, network = build()
    producer = Producer("p0")
    consumer = Consumer("cons", producers_for=lambda partition: frozenset({"p0"}))
    network.register(producer)
    network.register(consumer)

    def drive():
        producer.out.send_record("cons", "a", 1)
        producer.out.send_record("cons", "b", 2)
        producer.out.seal("cons", "b")

    sim.schedule(0.0, drive)
    sim.run()
    assert [p for p, _ in consumer.completed] == ["b"]
    assert consumer.seals.pending_partitions == frozenset({"a"})
    assert consumer.seals.buffered_count("a") == 1


def test_producer_cannot_send_after_sealing():
    sim, network = build()
    producer = Producer("p0")
    consumer = Consumer("cons", producers_for=lambda partition: frozenset({"p0"}))
    network.register(producer)
    network.register(consumer)

    def drive():
        producer.out.seal("cons", "k")
        with pytest.raises(SimulationError):
            producer.out.send_record("cons", "k", "late")

    sim.schedule(0.0, drive)
    sim.run()


def test_seal_all_punctuates_every_open_partition():
    sim, network = build()
    producer = Producer("p0")
    consumer = Consumer("cons", producers_for=lambda partition: frozenset({"p0"}))
    network.register(producer)
    network.register(consumer)

    def drive():
        producer.out.send_record("cons", "a", 1)
        producer.out.send_record("cons", "b", 2)
        producer.out.seal_all("cons")

    sim.schedule(0.0, drive)
    sim.run()
    assert sorted(p for p, _ in consumer.completed) == ["a", "b"]
    assert producer.out.sealed_partitions == frozenset({"a", "b"})


def test_duplicated_network_releases_each_partition_once():
    sim, network = build(seed=3, dup_prob=0.4)
    producer = Producer("p0")
    consumer = Consumer("cons", producers_for=lambda partition: frozenset({"p0"}))
    network.register(producer)
    network.register(consumer)

    def drive():
        for i in range(20):
            producer.out.send_record("cons", i % 4, i)
        producer.out.seal_all("cons")

    sim.schedule(0.0, drive)
    sim.run()
    released = [p for p, _ in consumer.completed]
    assert sorted(released) == [0, 1, 2, 3]
    assert len(released) == len(set(released))


def test_zk_registry_lookup_once_per_partition():
    sim, network = build()
    zk = install_zookeeper(network)
    zk.preload_znode("producers/'k1'", ["p0"])
    zk.preload_znode("producers/'k2'", ["p0"])
    producer = Producer("p0")
    consumer = Consumer("cons", use_zk=True)
    network.register(producer)
    network.register(consumer)

    def drive():
        for i in range(10):
            producer.out.send_record("cons", "k1", i)
        producer.out.send_record("cons", "k2", "x")
        producer.out.seal_all("cons")

    sim.schedule(0.0, drive)
    sim.run()
    assert sorted(p for p, _ in consumer.completed) == ["k1", "k2"]
    # one registry read per partition, regardless of record count
    assert consumer.seals.registry_lookups == 2
    assert zk.stats.reads == 2


def test_missing_registry_entry_raises():
    sim, network = build()
    install_zookeeper(network)
    producer = Producer("p0")
    consumer = Consumer("cons", use_zk=True)
    network.register(producer)
    network.register(consumer)
    sim.schedule(0.0, lambda: producer.out.seal("cons", "ghost"))
    with pytest.raises(SimulationError):
        sim.run()


def test_manager_requires_exactly_one_registry_mode():
    with pytest.raises(SimulationError):
        SealManager("s", lambda p, r: None)
