"""ReplicaAssignment: component-to-task expansion and producer sets."""

from __future__ import annotations

import pytest

from repro.coord.assignment import ReplicaAssignment, stable_hash
from repro.errors import SimulationError


def test_tasks_of_names_follow_executor_convention():
    assignment = ReplicaAssignment({"Count": 3, "Commit": 1})
    assert assignment.tasks_of("Count") == ("Count#0", "Count#1", "Count#2")
    assert assignment.tasks_of("Commit") == ("Commit#0",)


def test_collapse_single_keeps_bare_component_names():
    assignment = ReplicaAssignment({"adserver0": 1, "adserver1": 2}, collapse_single=True)
    assert assignment.tasks_of("adserver0") == ("adserver0",)
    assert assignment.tasks_of("adserver1") == ("adserver1#0", "adserver1#1")


def test_task_for_is_deterministic_and_stable_hashed():
    assignment = ReplicaAssignment({"Count": 4})
    chosen = assignment.task_for("Count", ("w1", 3))
    assert chosen == assignment.task_for("Count", ("w1", 3))
    expected = assignment.tasks_of("Count")[stable_hash(("w1", 3)) % 4]
    assert chosen == expected


def test_producer_tasks_partitioned_vs_unpartitioned():
    assignment = ReplicaAssignment({"a": 2, "b": 2})
    everyone = assignment.producer_tasks(["a", "b"])
    assert everyone == frozenset({"a#0", "a#1", "b#0", "b#1"})
    routed = assignment.producer_tasks(["a", "b"], partition="c7")
    assert len(routed) == 2  # one replica per component
    assert routed <= everyone


def test_producer_sets_expands_component_level_registry():
    assignment = ReplicaAssignment({"s0": 2, "s1": 2})
    component_sets = {"c0": frozenset({"s0", "s1"}), "c1": frozenset({"s0"})}
    sets = assignment.producer_sets(component_sets)
    assert set(sets) == {"c0", "c1"}
    assert len(sets["c0"]) == 2 and len(sets["c1"]) == 1
    for partition, tasks in sets.items():
        for task in tasks:
            component = task.split("#")[0]
            assert task == assignment.task_for(component, partition)


def test_single_replica_assignment_degenerates_to_component_names():
    assignment = ReplicaAssignment({"s0": 1, "s1": 1}, collapse_single=True)
    sets = assignment.producer_sets({"c0": frozenset({"s0", "s1"})})
    assert sets["c0"] == frozenset({"s0", "s1"})


def test_invalid_counts_and_unknown_components_raise():
    with pytest.raises(SimulationError):
        ReplicaAssignment({"x": 0})
    assignment = ReplicaAssignment({"x": 1})
    with pytest.raises(SimulationError):
        assignment.tasks_of("y")


def test_stable_hash_is_deterministic_across_values():
    assert stable_hash("c3") == stable_hash("c3")
    assert stable_hash("c3") != stable_hash("c4")
