"""The app registry: the single catalog behind CLI, bench, and audit."""

from __future__ import annotations

import pytest

from repro.api import (
    BlazesApp,
    app_names,
    audit_app_names,
    get_app,
    iter_apps,
    register,
)
from repro.api.registry import _REGISTRY
from repro.errors import ApiError


def test_builtin_apps_are_registered():
    assert {"wordcount", "adnet", "kvs"} <= set(app_names())
    assert {"wordcount", "adnet", "kvs"} <= set(audit_app_names())


def test_get_app_returns_the_registered_instance():
    assert get_app("wordcount") is get_app("wordcount")
    assert [app.name for app in iter_apps()] == list(app_names())


def test_unknown_app_is_a_clean_error():
    with pytest.raises(ApiError, match="registered apps"):
        get_app("definitely-not-an-app")


def test_reregistering_a_name_requires_replace():
    name = "tmp-registry-test"
    try:
        first = register(BlazesApp(name, backend="storm"))
        register(first)  # same object: idempotent
        with pytest.raises(ApiError, match="already registered"):
            register(BlazesApp(name, backend="storm"))
        second = register(BlazesApp(name, backend="bloom"), replace=True)
        assert get_app(name) is second
    finally:
        _REGISTRY.pop(name, None)


def test_apps_without_audit_profile_are_not_audit_apps():
    name = "tmp-no-audit"
    try:
        register(BlazesApp(name, backend="storm"))
        assert name in app_names()
        assert name not in audit_app_names()
    finally:
        _REGISTRY.pop(name, None)
