"""Differential tests: the API-derived apps equal their legacy wiring.

Two halves:

* **spec equivalence** — the decorator/white-box-derived dataflow of each
  registered app is graph-isomorphic to the legacy hand-built spec (for
  the ad network, whose white-box annotations intentionally refine the
  paper's manual ones, the wiring and the end-to-end analysis verdicts
  must coincide instead);
* **run equivalence** — ``BlazesApp.run`` reproduces the committed state
  of the legacy runners for fixed seeds, strategy by strategy.
"""

from __future__ import annotations

import pytest

from repro.api import get_app
from repro.core import analyze, dataflow_isomorphic, isomorphism_mismatch, loads_spec

LEGACY_WORDCOUNT_YAML = """
name: wordcount
components:
  Splitter:
    annotations:
      - { from: tweets, to: words, label: CR }
  Count:
    annotations:
      - { from: words, to: counts, label: OW, subscript: [word, batch] }
  Commit:
    annotations:
      - { from: counts, to: db, label: CW }
streams:
  - { name: tweets, to: Splitter.tweets%SEAL% }
  - { name: words, from: Splitter.words, to: Count.words }
  - { name: counts, from: Count.counts, to: Commit.counts }
  - { name: db, from: Commit.db }
"""


LEGACY_EAGER_YAML = """
name: wordcount-eager
components:
  Splitter:
    annotations:
      - { from: tweets, to: words, label: CR }
  Count:
    annotations:
      - { from: words, to: counts, label: OW, subscript: [word] }
  Commit:
    annotations:
      - { from: counts, to: db, label: OW, subscript: [word] }
streams:
  - { name: tweets, to: Splitter.tweets }
  - { name: words, from: Splitter.words, to: Count.words }
  - { name: counts, from: Count.counts, to: Commit.counts }
  - { name: db, from: Commit.db }
"""


class TestSpecEquivalence:
    @pytest.mark.parametrize("strategy", ("sealed", "transactional"))
    def test_wordcount_matches_the_legacy_yaml_spec(self, strategy):
        legacy, _ = loads_spec(
            LEGACY_WORDCOUNT_YAML.replace("%SEAL%", ", seal: [batch]")
        )
        derived = get_app("wordcount").dataflow(strategy)
        assert dataflow_isomorphic(derived, legacy), isomorphism_mismatch(
            derived, legacy
        )

    def test_eager_wordcount_matches_the_legacy_yaml_spec(self):
        legacy, _ = loads_spec(LEGACY_EAGER_YAML)
        derived = get_app("wordcount").dataflow("eager")
        assert dataflow_isomorphic(derived, legacy), isomorphism_mismatch(
            derived, legacy
        )

    @pytest.mark.parametrize("sealed", (False, True))
    def test_kvs_matches_the_legacy_handbuilt_dataflow(self, sealed):
        from repro.apps.kvs import kvs_dataflow

        legacy = kvs_dataflow(seal_puts_on_key=sealed)
        derived = get_app("kvs").dataflow("sealed" if sealed else "uncoordinated")
        assert dataflow_isomorphic(derived, legacy), isomorphism_mismatch(
            derived, legacy
        )

    @pytest.mark.parametrize(
        "strategy,seal", (("uncoordinated", None), ("seal", ["campaign"]))
    )
    def test_adnet_matches_the_legacy_wiring_and_verdict(self, strategy, seal):
        from repro.apps.ad_network import ad_network_dataflow

        legacy = ad_network_dataflow("CAMPAIGN", seal=seal)
        app = get_app("adnet")
        derived = app.dataflow(strategy)

        # identical wiring: same streams, endpoints, seals, components
        def wiring(flow):
            return {
                (
                    s.name,
                    s.src,
                    s.dst,
                    tuple(sorted(s.seal_key)) if s.seal_key else None,
                )
                for s in flow.streams
            }

        assert wiring(derived) == wiring(legacy)
        assert {c.name: c.rep for c in derived.components} == {
            c.name: c.rep for c in legacy.components
        }

        # the white-box Report annotations refine the paper's manual CW/OR
        # split, so the graphs are not annotation-identical — but the
        # end-to-end verdicts must coincide (the Section VII claim)
        legacy_result = analyze(legacy)
        derived_result = app.analyze(strategy)
        assert {n: str(l) for n, l in derived_result.sink_labels.items()} == {
            n: str(l) for n, l in legacy_result.sink_labels.items()
        }
        assert derived_result.severity == legacy_result.severity


class TestRunEquivalence:
    def test_wordcount_run_reproduces_the_legacy_committed_store(self):
        from repro.apps.wordcount import committed_store, run_wordcount

        for strategy, kwargs in (
            ("sealed", {}),
            ("transactional", {"transactional": True}),
            ("eager", {"eager": True}),
        ):
            outcome = get_app("wordcount").run(
                strategy, seed=7, workers=2, total_batches=3, batch_size=10
            )
            _, legacy_cluster = run_wordcount(
                seed=7, workers=2, total_batches=3, batch_size=10, **kwargs
            )
            assert committed_store(outcome.cluster) == committed_store(
                legacy_cluster
            ), strategy

    def test_kvs_run_reproduces_the_legacy_replica_state(self):
        from repro.apps.kvs import run_kvs

        for strategy in ("sealed", "uncoordinated"):
            outcome = get_app("kvs").run(strategy, seed=7, smoke=True)
            legacy = run_kvs(
                strategy, seed=7, workload=outcome.result.workload
            )
            for node in legacy.cache_nodes:
                assert outcome.result.cache_entries(node) == legacy.cache_entries(
                    node
                ), (strategy, node)
            for node in legacy.store_nodes:
                assert outcome.result.store_writes(node) == legacy.store_writes(
                    node
                ), (strategy, node)

    def test_adnet_run_reproduces_the_legacy_replica_state(self):
        from repro.apps.ad_network import run_ad_network

        for strategy in ("uncoordinated", "independent-seal"):
            outcome = get_app("adnet").run(strategy, seed=7, smoke=True)
            legacy = run_ad_network(
                strategy, seed=7, workload=outcome.result.workload
            )
            for node in legacy.report_nodes:
                assert outcome.result.committed_state(
                    node
                ) == legacy.committed_state(node), (strategy, node)
