"""Spec round-trip: ``loads_spec(dump_spec(df)) == df``.

Two sweeps pin the serializer against the builder path:

* every registered app, every strategy — the dataflows the API actually
  derives (topology-extracted and white-box-analyzed alike) survive a
  YAML round trip bit-for-bit;
* a hypothesis-generated family of chain dataflows covering the corners
  the apps do not reach: label overrides, replicated streams, starred
  gates, dotted component names, and functional dependencies.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.api import get_app
from repro.core import Dataflow, FDSet, dump_spec, loads_spec
from repro.core.annotations import parse_annotation
from repro.core.labels import Label, LabelKind

APPS_AND_STRATEGIES = [
    (name, strategy)
    for name in ("wordcount", "adnet", "kvs")
    for strategy in get_app(name).strategies
]


def fd_signature(fds: FDSet) -> set[str]:
    return {str(fd) for fd in fds}


@pytest.mark.parametrize("app_name,strategy", APPS_AND_STRATEGIES)
def test_registered_app_specs_round_trip(app_name, strategy):
    app = get_app(app_name)
    dataflow = app.dataflow(strategy)
    fds = app.fds()
    loaded, loaded_fds = loads_spec(dump_spec(dataflow, fds))
    assert loaded == dataflow, (
        f"{app_name}/{strategy}: round-tripped dataflow drifted\n"
        f"{loaded.signature()}\nvs\n{dataflow.signature()}"
    )
    assert fd_signature(loaded_fds) == fd_signature(fds)


def test_app_spec_yaml_reanalyzes_identically():
    """The dumped spec is a faithful substitute for the app's dataflow."""
    for app_name, strategy in APPS_AND_STRATEGIES:
        app = get_app(app_name)
        dataflow, fds = loads_spec(app.spec(strategy))
        from repro.core import analyze

        direct = app.analyze(strategy)
        via_yaml = analyze(dataflow, fds)
        assert {n: str(l) for n, l in via_yaml.sink_labels.items()} == {
            n: str(l) for n, l in direct.sink_labels.items()
        }, f"{app_name}/{strategy}"


# ----------------------------------------------------------------------
# hypothesis chain-dataflow family
# ----------------------------------------------------------------------
_ATTRS = ("a", "b", "key", "batch")

annotation_st = st.one_of(
    st.just(("CR", None)),
    st.just(("CW", None)),
    st.tuples(
        st.sampled_from(("OR", "OW")),
        st.one_of(
            st.none(),  # starred gate
            st.lists(st.sampled_from(_ATTRS), min_size=1, max_size=3, unique=True),
        ),
    ),
)

stream_label_st = st.one_of(
    st.none(),
    st.sampled_from((LabelKind.ASYNC, LabelKind.RUN, LabelKind.INST, LabelKind.DIVERGE)),
)

chain_st = st.tuples(
    st.lists(annotation_st, min_size=1, max_size=4),  # one path per component
    st.booleans(),  # dotted component names
    st.lists(st.booleans(), min_size=4, max_size=4),  # rep flags, cycled
    st.one_of(
        st.none(), st.lists(st.sampled_from(_ATTRS), min_size=1, max_size=2, unique=True)
    ),  # seal on the external input
    stream_label_st,  # label override on a second external input
    st.lists(  # functional dependencies
        st.tuples(
            st.lists(st.sampled_from(_ATTRS), min_size=1, max_size=2, unique=True),
            st.lists(st.sampled_from(_ATTRS), min_size=1, max_size=2, unique=True),
            st.booleans(),
        ),
        max_size=3,
    ),
)


def build_chain(spec) -> tuple[Dataflow, FDSet]:
    annotations, dotted, reps, seal, label_kind, fd_entries = spec
    flow = Dataflow("chain")
    names = [
        f"C.{index}" if dotted and index == 0 else f"C{index}"
        for index in range(len(annotations))
    ]
    for index, ((label, subscript), name) in enumerate(zip(annotations, names)):
        component = flow.add_component(name, rep=reps[index % len(reps)])
        component.add_path("in", "out", parse_annotation(label, subscript))
    flow.add_stream("ingress", dst=(names[0], "in"), seal=seal)
    if label_kind is not None:
        # a second, labeled external input into the same interface
        flow.add_stream("side", dst=(names[0], "in"), label=Label(label_kind))
    for index in range(len(names) - 1):
        flow.add_stream(
            f"s{index}",
            src=(names[index], "out"),
            dst=(names[index + 1], "in"),
            rep=index % 2 == 1,
        )
    flow.add_stream("egress", src=(names[-1], "out"))
    fds = FDSet()
    for by, determines, injective in fd_entries:
        fds.add(by, determines, injective=injective)
    flow.validate()
    return flow, fds


@settings(max_examples=60, deadline=None)
@given(chain_st)
def test_generated_dataflows_round_trip(spec):
    flow, fds = build_chain(spec)
    loaded, loaded_fds = loads_spec(dump_spec(flow, fds))
    assert loaded == flow
    assert fd_signature(loaded_fds) == fd_signature(fds)


def test_label_override_round_trips():
    """Drift fixed: dump_spec used to silently drop stream label overrides."""
    flow = Dataflow("labeled")
    flow.add_component("C").add_path("in", "out", parse_annotation("CR"))
    flow.add_stream("ingress", dst=("C", "in"), label=Label(LabelKind.RUN))
    flow.add_stream("egress", src=("C", "out"))
    loaded, _ = loads_spec(dump_spec(flow))
    assert loaded == flow
    assert loaded.stream("ingress").label == Label(LabelKind.RUN)


def test_dotted_component_name_round_trips():
    """Drift fixed: 'Comp.x.iface' endpoints used to split at the wrong dot."""
    flow = Dataflow("dotted")
    flow.add_component("svc.v2").add_path("in", "out", parse_annotation("CW"))
    flow.add_stream("ingress", dst=("svc.v2", "in"))
    flow.add_stream("egress", src=("svc.v2", "out"))
    loaded, _ = loads_spec(dump_spec(flow))
    assert loaded == flow


def test_graph_rejects_a_sealed_stream_with_a_label_override():
    """The builder enforces what the spec format cannot express, so every
    constructible dataflow stays round-trippable."""
    from repro.errors import DataflowError

    flow = Dataflow("conflict")
    flow.add_component("C").add_path("in", "out", parse_annotation("CR"))
    with pytest.raises(DataflowError, match="either a label override or a seal"):
        flow.add_stream(
            "ingress", dst=("C", "in"), seal=["k"], label=Label(LabelKind.RUN)
        )


def test_graph_rejects_internal_and_keyed_stream_labels():
    """Internal/keyed kinds would dump to YAML that loads_spec rejects."""
    from repro.core.labels import NDRead, Seal, Taint
    from repro.errors import DataflowError

    for label in (Taint(), NDRead("k"), Seal(["k"])):
        flow = Dataflow("bad-label")
        flow.add_component("C").add_path("in", "out", parse_annotation("CR"))
        with pytest.raises(DataflowError, match="not a valid stream label"):
            flow.add_stream("ingress", dst=("C", "in"), label=label)


def test_label_and_seal_are_mutually_exclusive():
    from repro.errors import SpecError

    text = """
name: bad
components:
  C:
    annotations: [{ from: i, to: o, label: CR }]
streams:
  - { name: s, to: C.i, seal: [k], label: Run }
  - { name: out, from: C.o }
"""
    with pytest.raises(SpecError):
        loads_spec(text)


def test_unknown_stream_label_is_rejected():
    from repro.errors import SpecError

    text = """
name: bad
components:
  C:
    annotations: [{ from: i, to: o, label: CR }]
streams:
  - { name: s, to: C.i, label: Sealish }
  - { name: out, from: C.o }
"""
    with pytest.raises(SpecError):
        loads_spec(text)
