"""The BlazesApp façade: declaration, derivation, execution, audit glue."""

from __future__ import annotations

import pytest

from repro.api import BlazesApp, RunOutcome, get_app
from repro.core import SealStrategy, analyze, loads_spec
from repro.core.labels import LabelKind
from repro.errors import ApiError


class TestDeclaration:
    def test_unknown_strategy_is_a_clean_error(self):
        app = get_app("wordcount")
        with pytest.raises(ApiError, match="no strategy"):
            app.analyze("nope")

    def test_default_strategy_is_the_declared_default(self):
        assert get_app("wordcount").default_strategy == "sealed"
        assert get_app("adnet").default_strategy == "seal"
        assert get_app("kvs").default_strategy == "sealed"

    def test_duplicate_declarations_are_rejected(self):
        app = BlazesApp("tmp", backend="bloom")
        app.component("C", annotations=[{"from": "i", "to": "o", "label": "CR"}])
        with pytest.raises(ApiError, match="duplicate component"):
            app.component("C", annotations=[{"from": "i", "to": "o", "label": "CR"}])
        app.stream("s", to="C.i")
        with pytest.raises(ApiError, match="duplicate stream"):
            app.stream("s", to="C.i")
        app.strategy("x")
        with pytest.raises(ApiError, match="duplicate strategy"):
            app.strategy("x")

    def test_backend_is_validated(self):
        with pytest.raises(ApiError, match="unknown backend"):
            BlazesApp("tmp", backend="flink")

    def test_audit_profile_validates_strategy_names(self):
        app = BlazesApp("tmp", backend="bloom")
        app.strategy("only")
        with pytest.raises(ApiError, match="no strategy"):
            app.audit_profile(
                strategies=("only", "missing"),
                horizon=1.0,
                schedules=lambda smoke: (),
                run_params=lambda smoke: {},
                roles=lambda cluster: {},
                observe=lambda outcome, params: None,
            )


class TestDerivation:
    def test_strategy_seals_shape_the_dataflow(self):
        app = get_app("kvs")
        assert app.dataflow("sealed").stream("puts").seal_key == frozenset({"key"})
        assert app.dataflow("uncoordinated").stream("puts").seal_key is None

    def test_predicted_labels_match_the_paper(self):
        expectations = {
            ("wordcount", "sealed"): "Async",
            ("wordcount", "eager"): "Run",
            ("adnet", "uncoordinated"): "Diverge",
            ("adnet", "seal"): "Async",
            ("kvs", "uncoordinated"): "Diverge",
            ("kvs", "sealed"): "Async",
        }
        for (name, strategy), label in expectations.items():
            assert str(get_app(name).predicted_label(strategy)) == label

    def test_plan_synthesizes_seal_strategy_for_the_sealed_kvs(self):
        plan = get_app("kvs").plan("sealed")
        strategy = plan.strategy_for("Store")
        assert isinstance(strategy, SealStrategy)
        assert ("puts", frozenset({"key"})) in strategy.partitions
        assert not plan.uses_global_order

    def test_spec_is_analyzable_yaml(self):
        dataflow, fds = loads_spec(get_app("wordcount").spec("sealed"))
        result = analyze(dataflow, fds)
        assert result.is_consistent
        assert result.label_of("tweets->Splitter").kind is LabelKind.SEAL

    def test_declarative_component_without_annotations_is_rejected(self):
        class Bare:
            pass

        app = BlazesApp("tmp", backend="bloom")
        app.component("C", Bare)
        app.stream("out", frm="C.o")
        app.strategy("only")
        with pytest.raises(ApiError, match="no\\s+annotations"):
            app.dataflow()


class TestExecution:
    def test_run_returns_a_uniform_outcome(self):
        outcome = get_app("wordcount").run(smoke=True, seed=3)
        assert isinstance(outcome, RunOutcome)
        assert outcome.strategy == "sealed"
        assert outcome.backend == "storm"
        assert outcome.metrics["batches_acked"] == 3
        payload = outcome.to_dict()
        assert payload["app"] == "wordcount"
        assert "metrics" in payload and "result" not in payload

    def test_caller_kwargs_override_strategy_params(self):
        outcome = get_app("wordcount").run(
            "sealed", smoke=True, total_batches=2
        )
        assert outcome.metrics["batches_acked"] == 2

    def test_runnerless_app_raises(self):
        app = BlazesApp("tmp", backend="bloom")
        app.strategy("only")
        with pytest.raises(ApiError, match="no runner"):
            app.run()

    def test_harness_requires_an_audit_profile(self):
        from repro.errors import BlazesError

        app = BlazesApp("tmp", backend="bloom")
        with pytest.raises(BlazesError, match="no audit profile"):
            app.harness()
