"""The ``@annotate`` decorator and the white-box cross-check."""

from __future__ import annotations

import pytest

from repro.api import annotate, crosscheck_module, declared_annotations
from repro.apps.kvs import LwwKvs, SnapshotCache
from repro.bloom.module import BloomModule
from repro.errors import AnnotationError, ApiError
from repro.storm.topology import Bolt


def test_annotations_read_top_down():
    @annotate(frm="a", to="b", label="CR")
    @annotate(frm="b", to="c", label="OW", subscript=["k"])
    class Component:
        pass

    assert declared_annotations(Component) == [
        {"from": "a", "to": "b", "label": "CR"},
        {"from": "b", "to": "c", "label": "OW", "subscript": ["k"]},
    ]


def test_decorating_a_bolt_does_not_mutate_the_base_class():
    @annotate(frm="x", to="y", label="CW")
    class MyBolt(Bolt):
        pass

    assert Bolt.blazes_annotations == []
    assert len(MyBolt.blazes_annotations) == 1


def test_subclass_annotations_do_not_leak_into_the_parent():
    @annotate(frm="x", to="y", label="CR")
    class Parent:
        pass

    @annotate(frm="y", to="z", label="CR")
    class Child(Parent):
        pass

    assert len(declared_annotations(Parent)) == 1
    assert [a["from"] for a in declared_annotations(Child)] == ["y"]


def test_duplicate_path_is_rejected():
    with pytest.raises(ApiError, match="duplicate @annotate"):

        @annotate(frm="a", to="b", label="CR")
        @annotate(frm="a", to="b", label="CW")
        class Component:  # pragma: no cover - never constructed
            pass


def test_bad_label_fails_at_class_definition_time():
    with pytest.raises(AnnotationError):

        @annotate(frm="a", to="b", label="XX")
        class Component:  # pragma: no cover - never constructed
            pass

    with pytest.raises(AnnotationError):

        @annotate(frm="a", to="b", label="CR", subscript=["k"])
        class Confluent:  # pragma: no cover - never constructed
            pass


def test_crosscheck_passes_for_the_shipped_modules():
    crosscheck_module(LwwKvs())
    crosscheck_module(SnapshotCache())


def test_crosscheck_flags_a_wrong_claim():
    @annotate(frm="response", to="cached", label="OW", subscript=["reqid"])
    class MisannotatedCache(BloomModule):
        def setup(self) -> None:
            self.input_interface("response", ["reqid", "key", "val"])
            self.output_interface("cached", ["reqid", "key", "val"])
            self.table("entries", ["reqid", "key", "val"])

        def rules(self):
            return [
                self.rule("entries", "<=", self.scan("response")),
                self.rule("cached", "<=", self.scan("entries")),
            ]

    with pytest.raises(ApiError, match="disagree with the white-box"):
        crosscheck_module(MisannotatedCache())


def test_crosscheck_is_vacuous_without_declarations():
    class Silent(BloomModule):
        def setup(self) -> None:
            self.input_interface("i", ["x"])
            self.output_interface("o", ["x"])

        def rules(self):
            return [self.rule("o", "<=", self.scan("i"))]

    crosscheck_module(Silent())  # no claims, nothing to check
