"""Determinism regression pins: per-app x strategy x seed run digests.

Every registered app, under every strategy, at several seeds, is run to
quiescence and hashed — trace rows, virtual end time, events fired, and
the metrics summary, canonicalized so the digest is stable across hash
randomization and Python minor versions.  The canonicalization and
hashing live in :mod:`repro.exec.digests` (moved verbatim from here, so
the checked-in pins never shifted).  The digests are checked in
(``seed_digests.json``): any kernel, engine, or app change that silently
perturbs deterministic replay fails this test loudly instead of quietly
shifting every figure and audit verdict.

When a change *intentionally* alters replay (a new RNG draw, a different
message granularity), regenerate the pins and review the diff::

    REPRO_REGEN_DIGESTS=1 python -m pytest tests/integration/test_seed_digests.py

Regeneration runs through the evaluation engine, so ``BLAZES_JOBS=4``
fans the (app, strategy, seed) cells out over the warm worker pool.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.exec.digests import digest_cells
from repro.exec.engine import resolve_jobs

DIGEST_PATH = Path(__file__).parent / "seed_digests.json"
SEEDS = (1, 2)


def test_seed_digests_pinned():
    if os.environ.get("REPRO_REGEN_DIGESTS") == "1":
        current = digest_cells(SEEDS, jobs=resolve_jobs())
        DIGEST_PATH.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"regenerated {len(current)} seed digests")
    current = digest_cells(SEEDS)
    assert DIGEST_PATH.exists(), (
        "seed_digests.json is missing; regenerate with REPRO_REGEN_DIGESTS=1"
    )
    pinned = json.loads(DIGEST_PATH.read_text())
    assert current == pinned, (
        "deterministic replay diverged from the pinned digests; if the "
        "change is intentional, regenerate with REPRO_REGEN_DIGESTS=1 and "
        "review the diff"
    )
