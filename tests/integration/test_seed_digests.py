"""Determinism regression pins: per-app x strategy x seed run digests.

Every registered app, under every strategy, at several seeds, is run to
quiescence and hashed — trace rows, virtual end time, events fired, and
the metrics summary, canonicalized so the digest is stable across hash
randomization and Python minor versions.  The digests are checked in
(``seed_digests.json``): any kernel, engine, or app change that silently
perturbs deterministic replay fails this test loudly instead of quietly
shifting every figure and audit verdict.

When a change *intentionally* alters replay (a new RNG draw, a different
message granularity), regenerate the pins and review the diff::

    REPRO_REGEN_DIGESTS=1 python -m pytest tests/integration/test_seed_digests.py
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.api.registry import app_names, get_app

DIGEST_PATH = Path(__file__).parent / "seed_digests.json"
SEEDS = (1, 2)


def _canon(value):
    """A hash-stable canonical form: sets/dicts ordered, floats rounded."""
    if isinstance(value, (frozenset, set)):
        return ("set",) + tuple(sorted((_canon(v) for v in value), key=repr))
    if isinstance(value, dict):
        return ("dict",) + tuple(
            sorted(((_canon(k), _canon(v)) for k, v in value.items()), key=repr)
        )
    if isinstance(value, (list, tuple)):
        return tuple(_canon(v) for v in value)
    if isinstance(value, float):
        return round(value, 12)
    return value


def _digest(outcome) -> str:
    cluster = outcome.cluster
    payload = repr(
        _canon(
            (
                tuple(cluster.trace._rows),
                cluster.sim.now,
                cluster.sim.fired,
                outcome.metrics,
            )
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _current_digests() -> dict[str, str]:
    digests = {}
    for name in app_names():
        app = get_app(name)
        for strategy in app.strategies:
            for seed in SEEDS:
                outcome = app.run(strategy, seed=seed, smoke=True)
                digests[f"{name}/{strategy}/{seed}"] = _digest(outcome)
    return digests


def test_seed_digests_pinned():
    current = _current_digests()
    if os.environ.get("REPRO_REGEN_DIGESTS") == "1":
        DIGEST_PATH.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"regenerated {len(current)} seed digests")
    assert DIGEST_PATH.exists(), (
        "seed_digests.json is missing; regenerate with REPRO_REGEN_DIGESTS=1"
    )
    pinned = json.loads(DIGEST_PATH.read_text())
    assert current == pinned, (
        "deterministic replay diverged from the pinned digests; if the "
        "change is intentional, regenerate with REPRO_REGEN_DIGESTS=1 and "
        "review the diff"
    )
