"""The full Blazes loop, fully automatic (paper Figure 1, white-box side).

Bloom source code in, coordinated execution out:

1. white-box analysis extracts annotations from the CAMPAIGN query module;
2. the dataflow analysis decides the system needs coordination and that a
   seal strategy suffices for the sealed clickstream;
3. ``apply_strategy`` installs the synthesized seal protocol on live
   reporting replicas;
4. the coordinated system produces identical replica state under
   different network interleavings — the paper's end-to-end promise.
"""

from __future__ import annotations

import pytest

from repro.apps.queries import make_report_module
from repro.bloom.analysis import analyze_module, attach_component
from repro.bloom.cluster import BloomCluster
from repro.bloom.rewrite import apply_strategy
from repro.coord.sealing import SealedStreamProducer
from repro.core import Dataflow, LabelKind, SealStrategy, analyze, choose_strategies
from repro.sim.network import Process


def synthesized_plan(seal):
    """Steps 1-2: extraction plus analysis of the reporting tier."""
    module = make_report_module("CAMPAIGN", threshold=5)
    analysis = analyze_module(module)
    dataflow = Dataflow("report-tier")
    attach_component(dataflow, module, name="Report", rep=True, analysis=analysis)
    dataflow.add_stream("click", dst=("Report", "click"), seal=seal)
    dataflow.add_stream("request", dst=("Report", "request"))
    dataflow.add_stream("response", src=("Report", "response"))
    result = analyze(dataflow, analysis.fds)
    return result, choose_strategies(result)


class Producer(Process):
    """A workload source speaking the synthesized seal protocol."""

    def __init__(self, name, replicas, clicks_by_partition):
        super().__init__(name)
        self.outs = {r: SealedStreamProducer(self, "click") for r in replicas}
        self.clicks_by_partition = clicks_by_partition

    def recv(self, msg):
        pass

    def on_start(self):
        for partition, rows in self.clicks_by_partition.items():
            for row in rows:
                for replica, out in self.outs.items():
                    out.send_record(replica, partition, row)
            for replica, out in self.outs.items():
                out.seal(replica, partition)


def workload():
    return {
        "c1": [("c1", 0, "ad1", f"u{i}") for i in range(3)],     # poor (3 < 5)
        "c2": [("c2", 0, "ad2", f"v{i}") for i in range(9)],     # not poor
    }


def run_coordinated(seed: int):
    """Steps 3-4: install the synthesized strategy and execute."""
    result, plan = synthesized_plan(seal=["campaign"])
    strategy = plan.strategy_for("Report")
    assert isinstance(strategy, SealStrategy)

    cluster = BloomCluster(seed=seed)
    replicas = [f"r{i}" for i in range(3)]
    for name in replicas:
        node = cluster.add_node(name, make_report_module("CAMPAIGN", threshold=5))
        adapter = apply_strategy(
            node,
            strategy,
            stream_collections={"click": "click"},
            producers_for=lambda partition: frozenset({"producer"}),
        )
        assert adapter is not None
        node.insert("request", [("q1", "ad1"), ("q2", "ad2")])
    cluster.network.register(Producer("producer", replicas, workload()))
    cluster.run()
    return cluster, replicas


def test_analysis_says_seal_suffices():
    result, plan = synthesized_plan(seal=["campaign"])
    assert result.label_of("response").kind is LabelKind.ASYNC
    assert isinstance(plan.strategy_for("Report"), SealStrategy)
    assert not plan.uses_global_order


def test_analysis_without_seal_demands_ordering():
    result, plan = synthesized_plan(seal=None)
    assert result.label_of("response").kind in (LabelKind.INST, LabelKind.DIVERGE)
    assert plan.strategy_for("Report").kind == "order"


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_synthesized_coordination_yields_identical_replicas(seed):
    cluster, replicas = run_coordinated(seed)
    states = [cluster.node(r).read("clicks") for r in replicas]
    responses = [cluster.node(r).output_history("response") for r in replicas]
    assert states[0] == states[1] == states[2]
    assert responses[0] == responses[1] == responses[2]
    # the deterministic answer: ad1 is poor (3 clicks < 5), ad2 is not
    assert responses[0] == {("q1", "ad1")}


def test_results_identical_across_interleavings():
    reference = None
    for seed in (0, 3, 11):
        cluster, replicas = run_coordinated(seed)
        snapshot = cluster.node(replicas[0]).output_history("response")
        if reference is None:
            reference = snapshot
        assert snapshot == reference
