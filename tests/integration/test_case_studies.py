"""End-to-end reproduction of the paper's Section VI case studies.

These tests pin the analyzer to the exact derivations printed in the paper:

* Storm word count — ``Run`` without seals, ``Async`` with ``Seal[batch]``;
* ad-reporting — ``Async`` for THRESH, ``Diverge`` for POOR,
  ``Async`` for CAMPAIGN once the clickstream is sealed on campaign, and
  ``Async`` for WINDOW sealed on window.
"""

from __future__ import annotations

import pytest

from repro.core import (
    CR,
    CW,
    OR,
    OW,
    Dataflow,
    FDSet,
    LabelKind,
    OrderStrategy,
    SealStrategy,
    analyze,
    choose_strategies,
)


def wordcount_dataflow(*, sealed: bool) -> Dataflow:
    flow = Dataflow("wordcount")
    splitter = flow.add_component("Splitter")
    splitter.add_path("tweets", "words", CR())
    count = flow.add_component("Count")
    count.add_path("words", "counts", OW("word", "batch"))
    commit = flow.add_component("Commit")
    commit.add_path("counts", "db", CW())
    flow.add_stream(
        "tweets", dst=("Splitter", "tweets"), seal=["batch"] if sealed else None
    )
    flow.add_stream("words", src=("Splitter", "words"), dst=("Count", "words"))
    flow.add_stream("counts", src=("Count", "counts"), dst=("Commit", "counts"))
    flow.add_stream("db", src=("Commit", "db"))
    return flow


# The Figure 4 dataflow builder now lives in the library proper.
from repro.apps.ad_network import ad_network_dataflow  # noqa: E402


class TestStormWordcount:
    def test_unsealed_topology_exhibits_cross_run_nondeterminism(self):
        result = analyze(wordcount_dataflow(sealed=False))
        assert result.label_of("db").kind is LabelKind.RUN
        # Count's state is tainted by nondeterministic input orders.
        assert result.output("Count", "counts").tainted
        assert "Count" in result.components_needing_coordination()

    def test_unsealed_topology_gets_ordering_strategy(self):
        result = analyze(wordcount_dataflow(sealed=False))
        plan = choose_strategies(result)
        strategy = plan.strategy_for("Count")
        assert isinstance(strategy, OrderStrategy)
        assert plan.uses_global_order

    def test_sealed_topology_is_deterministic_without_coordination(self):
        result = analyze(wordcount_dataflow(sealed=True))
        assert result.label_of("words").kind is LabelKind.SEAL
        assert result.label_of("counts").kind is LabelKind.ASYNC
        assert result.label_of("db").kind is LabelKind.ASYNC
        assert result.is_consistent

    def test_sealed_topology_selects_seal_strategy_for_count(self):
        result = analyze(wordcount_dataflow(sealed=True))
        plan = choose_strategies(result)
        strategy = plan.strategy_for("Count")
        assert isinstance(strategy, SealStrategy)
        assert ("words", frozenset({"batch"})) in strategy.partitions
        # Sealing avoids the global ordering service entirely.
        assert not plan.uses_global_order


class TestAdNetwork:
    def test_thresh_is_confluent_end_to_end(self):
        result = analyze(ad_network_dataflow("THRESH"))
        assert result.label_of("answers").kind is LabelKind.ASYNC
        assert result.is_consistent

    def test_poor_diverges_at_the_cache(self):
        result = analyze(ad_network_dataflow("POOR"))
        # Report produces cross-instance nondeterminism...
        assert result.label_of("r").kind is LabelKind.INST
        # ...which taints the replicated cache tier: permanent divergence.
        assert result.label_of("answers").kind is LabelKind.DIVERGE
        assert not result.is_consistent

    def test_poor_requires_global_ordering(self):
        result = analyze(ad_network_dataflow("POOR"))
        plan = choose_strategies(result)
        assert isinstance(plan.strategy_for("Report"), OrderStrategy)

    def test_campaign_with_sealed_clickstream_is_consistent(self):
        result = analyze(ad_network_dataflow("CAMPAIGN", seal=["campaign"]))
        assert result.label_of("r").kind is LabelKind.ASYNC
        assert result.label_of("answers").kind is LabelKind.ASYNC
        assert result.is_consistent

    def test_campaign_unsealed_diverges(self):
        result = analyze(ad_network_dataflow("CAMPAIGN"))
        assert result.label_of("answers").kind is LabelKind.DIVERGE

    def test_window_with_sealed_clickstream_is_consistent(self):
        result = analyze(ad_network_dataflow("WINDOW", seal=["window"]))
        assert result.label_of("answers").kind is LabelKind.ASYNC

    def test_cache_self_edge_is_the_only_cycle(self):
        result = analyze(ad_network_dataflow("THRESH"))
        assert result.cycles == (frozenset({"Cache"}),)

    def test_report_cache_pair_forms_no_cycle(self):
        # Footnote 3: Cache provides no path from r to q, so Report and
        # Cache must not be collapsed together.
        result = analyze(ad_network_dataflow("THRESH"))
        for members in result.cycles:
            assert members != frozenset({"Cache", "Report"})


class TestSealStrategySelection:
    def test_sealable_component_with_unsealed_stream_gets_order(self):
        flow = Dataflow("sealable")
        comp = flow.add_component("Agg", rep=True)
        comp.add_path("in", "out", OW("k"))
        flow.add_stream("in", dst=("Agg", "in"))
        flow.add_stream("out", src=("Agg", "out"))
        result = analyze(flow)
        plan = choose_strategies(result)
        assert isinstance(plan.strategy_for("Agg"), OrderStrategy)

    def test_incompatible_seal_still_requires_ordering(self):
        flow = Dataflow("incompatible")
        comp = flow.add_component("Agg", rep=True)
        comp.add_path("in", "out", OW("k"))
        flow.add_stream("in", dst=("Agg", "in"), seal=["other"])
        flow.add_stream("out", src=("Agg", "out"))
        result = analyze(flow)
        assert result.label_of("out").kind is LabelKind.DIVERGE
        plan = choose_strategies(result)
        assert isinstance(plan.strategy_for("Agg"), OrderStrategy)

    def test_star_gate_is_never_sealable(self):
        flow = Dataflow("star")
        comp = flow.add_component("Mystery")
        comp.add_path("in", "out", OW())
        flow.add_stream("in", dst=("Mystery", "in"), seal=["k"])
        flow.add_stream("out", src=("Mystery", "out"))
        result = analyze(flow)
        assert result.label_of("out").kind is LabelKind.RUN
        plan = choose_strategies(result)
        assert isinstance(plan.strategy_for("Mystery"), OrderStrategy)


class TestFDCompatibility:
    def test_injective_fd_extends_seal_compatibility(self):
        # Paper example: company name injectively determines stock symbol.
        fds = FDSet()
        fds.add(["company"], ["symbol"], injective=True)
        flow = Dataflow("tickers")
        comp = flow.add_component("BySymbol", rep=True)
        comp.add_path("trades", "out", OW("symbol"))
        flow.add_stream("trades", dst=("BySymbol", "trades"), seal=["company"])
        flow.add_stream("out", src=("BySymbol", "out"))
        result = analyze(flow, fds)
        assert result.label_of("out").kind is LabelKind.ASYNC
        plan = choose_strategies(result)
        assert isinstance(plan.strategy_for("BySymbol"), SealStrategy)

    def test_noninjective_fd_does_not_extend_compatibility(self):
        # Company determines headquarters city, but not injectively.
        fds = FDSet()
        fds.add(["company"], ["city"], injective=False)
        flow = Dataflow("cities")
        comp = flow.add_component("ByCity", rep=True)
        comp.add_path("trades", "out", OW("city"))
        flow.add_stream("trades", dst=("ByCity", "trades"), seal=["company"])
        flow.add_stream("out", src=("ByCity", "out"))
        result = analyze(flow, fds)
        assert result.label_of("out").kind is LabelKind.DIVERGE


@pytest.mark.parametrize(
    "query,seal,expected",
    [
        ("THRESH", None, LabelKind.ASYNC),
        ("POOR", None, LabelKind.DIVERGE),
        ("POOR", ["campaign"], LabelKind.DIVERGE),  # OR[id]: campaign seal no help
        ("WINDOW", None, LabelKind.DIVERGE),
        ("WINDOW", ["window"], LabelKind.ASYNC),
        ("CAMPAIGN", None, LabelKind.DIVERGE),
        ("CAMPAIGN", ["campaign"], LabelKind.ASYNC),
    ],
)
def test_query_matrix(query, seal, expected):
    """The Figure 6 query matrix: coordination requirements per query."""
    result = analyze(ad_network_dataflow(query, seal=seal))
    assert result.label_of("answers").kind is expected
