"""Unit tests for the kernel profiling layer."""

from __future__ import annotations

import pytest

from repro.sim import (
    LatencyModel,
    Network,
    Process,
    SimProfiler,
    Simulator,
    events_ref,
)


class Echo(Process):
    def recv(self, msg):
        pass


def _ping(n: int) -> None:
    pass


@pytest.mark.parametrize(
    "sim_cls", (Simulator, events_ref.Simulator), ids=("fast", "ref")
)
class TestProfilerOnBothKernels:
    def test_counts_fired_events_by_qualname(self, sim_cls):
        sim = sim_cls()
        profiler = SimProfiler()
        with profiler.observe(sim):
            for i in range(5):
                sim.post(0.1 * (i + 1), _ping, i)
            sim.run()
        assert profiler.events == 5
        assert profiler.kinds["_ping"] == 5
        assert profiler.events_per_second > 0
        assert profiler.wall_seconds > 0

    def test_heap_watermark_tracks_peak_depth(self, sim_cls):
        sim = sim_cls()
        profiler = SimProfiler()
        with profiler.observe(sim):
            for i in range(10):
                sim.post(0.1 * (i + 1), _ping, i)
            sim.run()
        assert profiler.heap_watermark >= 9

    def test_detached_runs_are_not_counted(self, sim_cls):
        sim = sim_cls()
        profiler = SimProfiler()
        sim.post(0.1, _ping, 0)
        sim.run()  # not observed
        with profiler.observe(sim):
            sim.post(0.1, _ping, 1)
            sim.run()
        assert profiler.events == 1

    def test_observe_restores_previous_profiler(self, sim_cls):
        sim = sim_cls()
        outer, inner = SimProfiler(), SimProfiler()
        with outer.observe(sim):
            with inner.observe(sim):
                assert sim.profiler is inner
            assert sim.profiler is outer
        assert sim.profiler is None

    def test_profiling_does_not_perturb_the_run(self, sim_cls):
        def run(profiled: bool):
            sim = sim_cls(seed=9)
            log = []

            def step():
                log.append((round(sim.now, 9), sim.rng.random()))
                if len(log) < 20:
                    sim.post(sim.rng.random(), step)

            sim.post(0.0, step)
            if profiled:
                with SimProfiler().observe(sim):
                    sim.run()
            else:
                sim.run()
            return log, sim.now, sim.fired

        assert run(True) == run(False)


def test_network_message_kinds_counted():
    sim = Simulator(seed=1)
    network = Network(sim, latency=LatencyModel(0.001, 0.0))
    a, b = Echo("a"), Echo("b")
    network.register(a)
    network.register(b)
    profiler = SimProfiler()
    with profiler.observe(sim):
        sim.post(0.0, lambda: [a.send("b", "data", i) for i in range(4)])
        sim.post(0.0, lambda: a.send("b", "ctl", None))
        sim.run()
    assert profiler.message_kinds["data"] == 4
    assert profiler.message_kinds["ctl"] == 1


def test_snapshot_is_json_friendly():
    import json

    sim = Simulator()
    profiler = SimProfiler()
    with profiler.observe(sim):
        sim.post(0.1, _ping, 0)
        sim.run()
    snap = profiler.snapshot()
    json.dumps(snap)  # must not raise
    assert snap["events"] == 1
    assert "event_kinds" in snap and "message_kinds" in snap
    assert snap["heap_watermark"] >= 1


def test_wall_time_accumulates_across_observes():
    sim = Simulator()
    profiler = SimProfiler()
    with profiler.observe(sim):
        sim.post(0.1, _ping, 0)
        sim.run()
    first = profiler.wall_seconds
    with profiler.observe(sim):
        sim.post(0.1, _ping, 1)
        sim.run()
    assert profiler.wall_seconds > first
    assert profiler.events == 2
