"""Property-based kernel invariants, held on BOTH kernels.

Each property is parametrized over the fast and reference simulator
classes directly (no environment variable), so hypothesis shrinks
counterexamples against whichever kernel broke the invariant:

* virtual time is monotone under any schedule of events;
* events at one timestamp fire in schedule order, even when scheduled
  from inside other events;
* a cancelled event never executes, no matter when the cancel lands;
* re-running any seed reproduces ``fired``, ``now``, and the full fire
  log exactly;
* ``until`` / ``max_events`` bounds are respected under random schedules;
* the two kernels produce identical fire logs for random programs — the
  property-level form of the app-level differential suite.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import events, events_ref

KERNEL_CLASSES = (events.Simulator, events_ref.Simulator)
KERNEL_IDS = tuple(cls.kernel for cls in KERNEL_CLASSES)

both_kernels = pytest.mark.parametrize(
    "sim_cls", KERNEL_CLASSES, ids=KERNEL_IDS
)

# A random program: a list of (delay, extra) pairs; each event appends to
# the fire log and schedules ``extra`` follow-ups at random small delays
# drawn from the simulator's own RNG, exercising schedule-from-inside.
programs = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=50, allow_nan=False),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=1,
    max_size=25,
)


def _execute(sim, program, *, until=None, max_events=None):
    log = []

    def fire(tag):
        log.append((round(sim.now, 9), tag))
        for sub in range(extras.get(tag, 0)):  # follow-ups spawn nothing
            sim.schedule(sim.rng.random(), lambda t=(tag, sub): fire(t))

    extras = {}
    for index, (delay, extra) in enumerate(program):
        extras[index] = extra
        sim.schedule(delay, lambda i=index: fire(i))
    sim.run(until=until, max_events=max_events)
    return log


@both_kernels
class TestKernelInvariants:
    @given(program=programs)
    def test_virtual_time_monotone(self, sim_cls, program):
        sim = sim_cls(seed=0)
        log = _execute(sim, program)
        times = [t for t, _ in log]
        assert times == sorted(times)

    @given(delays=st.lists(st.floats(min_value=0, max_value=5), min_size=2, max_size=15))
    def test_same_timestamp_fires_in_schedule_order(self, sim_cls, delays):
        sim = sim_cls()
        fired = []
        for tag in range(len(delays)):
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == list(range(len(delays)))

    @given(
        delays=st.lists(st.floats(min_value=0, max_value=10), min_size=2, max_size=12),
        cancel_index=st.integers(min_value=0, max_value=11),
    )
    def test_cancel_before_fire_never_executes(self, sim_cls, delays, cancel_index):
        cancel_index %= len(delays)
        sim = sim_cls()
        fired = []
        handles = [
            sim.schedule(delay, lambda t=tag: fired.append(t))
            for tag, delay in enumerate(delays)
        ]
        handles[cancel_index].cancel()
        sim.run()
        assert cancel_index not in fired
        assert sorted(fired) == [t for t in range(len(delays)) if t != cancel_index]

    @given(program=programs, seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30)
    def test_rerun_reproduces_everything(self, sim_cls, program, seed):
        first = sim_cls(seed=seed)
        second = sim_cls(seed=seed)
        assert _execute(first, program) == _execute(second, program)
        assert first.now == second.now
        assert first.fired == second.fired
        assert first.pending == second.pending

    @given(program=programs, until=st.floats(min_value=0, max_value=60))
    def test_until_bound_respected(self, sim_cls, program, until):
        sim = sim_cls(seed=1)
        log = _execute(sim, program, until=until)
        assert all(t <= until + 1e-9 for t, _ in log)
        assert sim.now <= until + 1e-9

    @given(program=programs, max_events=st.integers(min_value=0, max_value=10))
    def test_max_events_bound_respected(self, sim_cls, program, max_events):
        sim = sim_cls(seed=1)
        log = _execute(sim, program, max_events=max_events)
        assert len(log) <= max_events
        assert sim.fired <= max_events

    @given(
        delays=st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=10)
    )
    def test_pending_counts_live_events_only(self, sim_cls, delays):
        sim = sim_cls()
        handles = [sim.schedule(d, lambda: None) for d in delays]
        assert sim.pending == len(delays)
        handles[0].cancel()
        assert sim.pending == len(delays) - 1
        handles[0].cancel()  # idempotent
        assert sim.pending == len(delays) - 1
        sim.run()
        assert sim.pending == 0
        assert sim.fired == len(delays) - 1


class TestKernelAgreement:
    """Random programs produce identical observable runs on both kernels."""

    @given(
        program=programs,
        seed=st.integers(min_value=0, max_value=2**31),
        until=st.one_of(st.none(), st.floats(min_value=0, max_value=60)),
        max_events=st.one_of(st.none(), st.integers(min_value=0, max_value=40)),
    )
    @settings(max_examples=60)
    def test_fire_logs_identical(self, program, seed, until, max_events):
        results = []
        for cls in KERNEL_CLASSES:
            sim = cls(seed=seed)
            log = _execute(sim, program, until=until, max_events=max_events)
            results.append((log, sim.now, sim.fired, sim.pending))
        assert results[0] == results[1]

    @given(
        delays=st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=12),
        cancel_mask=st.integers(min_value=0, max_value=4095),
    )
    @settings(max_examples=60)
    def test_cancellation_identical(self, delays, cancel_mask):
        results = []
        for cls in KERNEL_CLASSES:
            sim = cls()
            fired = []
            handles = [
                sim.schedule(delay, lambda t=tag: fired.append(t))
                for tag, delay in enumerate(delays)
            ]
            for index, handle in enumerate(handles):
                if cancel_mask & (1 << index):
                    handle.cancel()
            sim.run()
            results.append((fired, sim.now, sim.fired, sim.pending))
        assert results[0] == results[1]
