"""Unit tests for execution traces."""

from __future__ import annotations

from repro.sim import Trace
from repro.sim.trace import merge_traces


def make_trace():
    trace = Trace()
    trace.record(0.5, "a", "processed", 1)
    trace.record(1.5, "a", "processed", 2)
    trace.record(1.6, "b", "processed", 3)
    trace.record(2.5, "b", "sent", 4)
    return trace


def test_count_and_select():
    trace = make_trace()
    assert trace.count("processed") == 3
    assert trace.count("sent") == 1
    assert len(trace.select(source="a")) == 2
    assert len(trace.select(event="processed", source="b")) == 1
    assert len(trace.select(predicate=lambda r: r.data and r.data > 2)) == 2


def test_timeline_is_cumulative():
    trace = make_trace()
    series = trace.timeline("processed", bucket=1.0)
    assert series[0] == (1.0, 1)
    assert series[1] == (2.0, 3)
    assert series[-1][1] == 3


def test_timeline_empty_event():
    assert make_trace().timeline("nope") == []


def test_first_and_last():
    trace = make_trace()
    assert trace.first("processed").data == 1
    assert trace.last("processed").data == 3
    assert trace.first("nope") is None


def test_merge_traces_orders_by_time():
    t1, t2 = Trace(), Trace()
    t1.record(2.0, "x", "e")
    t2.record(1.0, "y", "e")
    merged = merge_traces([t1, t2])
    assert [r.source for r in merged] == ["y", "x"]


def test_total_weights_integer_data():
    trace = Trace()
    trace.record(0.1, "probe", "processed", 50)  # aggregated: 50 items
    trace.record(0.2, "probe", "processed", 30)
    trace.record(0.3, "probe", "processed", ("row",))  # non-int: weight 1
    trace.record(0.4, "probe", "processed")  # None: weight 1
    assert trace.total("processed") == 82
    assert trace.count("processed") == 4
    # bools and floats are not aggregation weights
    trace.record(0.5, "probe", "other", True)
    trace.record(0.6, "probe", "other", 2.5)
    assert trace.total("other") == 2


def test_timeline_weighted_matches_per_item_series():
    aggregated, per_item = Trace(), Trace()
    aggregated.record(0.4, "p", "processed", 3)
    aggregated.record(1.2, "p", "processed", 2)
    for time in (0.4, 0.4, 0.4, 1.2, 1.2):
        per_item.record(time, "p", "processed", ("row",))
    assert (
        aggregated.timeline("processed", bucket=0.5, weighted=True)
        == per_item.timeline("processed", bucket=0.5)
        == [(0.5, 3), (1.0, 3), (1.5, 5)]
    )
    # unweighted, the aggregated rows count once each
    assert aggregated.timeline("processed", bucket=0.5) == [
        (0.5, 1),
        (1.0, 1),
        (1.5, 2),
    ]


def test_data_series_preserves_record_order():
    trace = Trace()
    payloads = [(0, "a"), (1, "b"), (2, "c")]
    for seq, value in payloads:
        trace.record(0.1 * (seq + 1), "zk", "zk.order:t", (seq, value))
    trace.record(0.05, "zk", "other", "ignored")
    assert trace.data_series("zk.order:t") == payloads
    assert trace.data_series("nope") == []


def test_merge_traces_is_stable_under_equal_timestamps():
    t1, t2 = Trace(), Trace()
    t1.record(1.0, "x", "e", "x1")
    t1.record(1.0, "x", "e", "x2")
    t2.record(1.0, "y", "e", "y1")
    merged = merge_traces([t1, t2])
    # sorted() is stable: equal-time rows keep per-trace input order,
    # with t1's rows ahead of t2's
    assert [r.data for r in merged] == ["x1", "x2", "y1"]
    assert [r.data for r in merge_traces([t2, t1])] == ["y1", "x1", "x2"]
