"""Unit tests for execution traces."""

from __future__ import annotations

from repro.sim import Trace
from repro.sim.trace import merge_traces


def make_trace():
    trace = Trace()
    trace.record(0.5, "a", "processed", 1)
    trace.record(1.5, "a", "processed", 2)
    trace.record(1.6, "b", "processed", 3)
    trace.record(2.5, "b", "sent", 4)
    return trace


def test_count_and_select():
    trace = make_trace()
    assert trace.count("processed") == 3
    assert trace.count("sent") == 1
    assert len(trace.select(source="a")) == 2
    assert len(trace.select(event="processed", source="b")) == 1
    assert len(trace.select(predicate=lambda r: r.data and r.data > 2)) == 2


def test_timeline_is_cumulative():
    trace = make_trace()
    series = trace.timeline("processed", bucket=1.0)
    assert series[0] == (1.0, 1)
    assert series[1] == (2.0, 3)
    assert series[-1][1] == 3


def test_timeline_empty_event():
    assert make_trace().timeline("nope") == []


def test_first_and_last():
    trace = make_trace()
    assert trace.first("processed").data == 1
    assert trace.last("processed").data == 3
    assert trace.first("nope") is None


def test_merge_traces_orders_by_time():
    t1, t2 = Trace(), Trace()
    t1.record(2.0, "x", "e")
    t2.record(1.0, "y", "e")
    merged = merge_traces([t1, t2])
    assert [r.source for r in merged] == ["y", "x"]
