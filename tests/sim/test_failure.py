"""Unit tests for fault injection."""

from __future__ import annotations

from repro.sim import FailureInjector, Network, Process, Simulator


class Echo(Process):
    def __init__(self, name):
        super().__init__(name)
        self.got = []

    def recv(self, msg):
        self.got.append(msg.payload)


def build():
    sim = Simulator(seed=1)
    network = Network(sim)
    a, b = Echo("a"), Echo("b")
    network.register(a)
    network.register(b)
    return sim, network, a, b


def test_crash_window_drops_messages():
    sim, network, a, b = build()
    injector = FailureInjector(network)
    injector.crash_for("b", at=1.0, duration=2.0)
    for t in (0.5, 1.5, 2.5, 3.5):
        sim.schedule_at(t, lambda t=t: a.send("b", "data", t))
    sim.run()
    # messages sent at 1.5 and 2.5 land inside the crash window
    assert all(p < 1.0 or p > 3.0 for p in b.got)
    assert len(b.got) == 2
    assert injector.crashes and injector.recoveries


def test_loss_window_restores_previous_probability():
    sim, network, a, b = build()
    injector = FailureInjector(network)
    injector.loss_window(at=1.0, duration=1.0, drop_prob=1.0)
    sim.schedule_at(0.5, lambda: a.send("b", "data", "before"))
    sim.schedule_at(1.5, lambda: a.send("b", "data", "during"))
    sim.schedule_at(3.0, lambda: a.send("b", "data", "after"))
    sim.run()
    assert "before" in b.got
    assert "during" not in b.got
    assert "after" in b.got
    assert network.drop_prob == 0.0


def test_duplicate_window_restores_previous_probability():
    sim, network, a, b = build()
    injector = FailureInjector(network)
    injector.duplicate_window(at=1.0, duration=1.0, dup_prob=1.0)
    sim.schedule_at(0.5, lambda: a.send("b", "data", "before"))
    sim.schedule_at(1.5, lambda: a.send("b", "data", "during"))
    sim.schedule_at(3.0, lambda: a.send("b", "data", "after"))
    sim.run()
    assert b.got.count("before") == 1
    assert b.got.count("during") == 2
    assert b.got.count("after") == 1
    assert network.dup_prob == 0.0
    assert network.duplicated == 1


def test_partition_drops_messages_then_heals():
    sim, network, a, b = build()
    injector = FailureInjector(network)
    injector.partition("a", "b", at=1.0, duration=2.0)
    for t in (0.5, 1.5, 2.5, 3.5):
        sim.schedule_at(t, lambda t=t: a.send("b", "data", t))
        sim.schedule_at(t, lambda t=t: b.send("a", "data", -t))
    sim.run()
    # messages sent at 1.5 and 2.5 cross the severed link, both ways
    assert sorted(b.got) == [0.5, 3.5]
    assert sorted(a.got) == [-3.5, -0.5]
    assert injector.partitions and injector.heals
    assert not network.link_blocked("a", "b")
    assert not network.link_blocked("b", "a")


def test_asymmetric_partition_blocks_one_direction():
    sim, network, a, b = build()
    injector = FailureInjector(network)
    injector.partition("a", "b", at=1.0, duration=2.0, symmetric=False)
    sim.schedule_at(1.5, lambda: a.send("b", "data", "a->b"))
    sim.schedule_at(1.5, lambda: b.send("a", "data", "b->a"))
    sim.run()
    assert b.got == []
    assert a.got == ["b->a"]


def test_overlapping_partitions_do_not_heal_early():
    sim, network, a, b = build()
    injector = FailureInjector(network)
    injector.partition("a", "b", at=1.0, duration=2.0)
    injector.partition("a", "b", at=1.5, duration=0.5)  # ends at 2.0
    for t in (2.5, 3.5):
        sim.schedule_at(t, lambda t=t: a.send("b", "data", t))
    sim.run()
    # the first window holds until t=3.0 even though the second healed
    assert b.got == [3.5]
    assert not network.link_blocked("a", "b")


def test_partition_retries_reliable_kinds_until_heal():
    sim = Simulator(seed=3)
    network = Network(sim, reliable_kinds=("tcp",))
    a, b = Echo("a"), Echo("b")
    network.register(a)
    network.register(b)
    injector = FailureInjector(network)
    injector.partition("a", "b", at=0.0, duration=1.0)
    sim.schedule_at(0.5, lambda: a.send("b", "tcp", "session"))
    sim.schedule_at(0.5, lambda: a.send("b", "data", "datagram"))
    sim.run()
    # the TCP-like message is delayed across the partition, not lost
    assert b.got == ["session"]
    assert network.retried > 0
    assert network.dropped == 1


def test_reorder_window_scales_and_restores_jitter():
    sim, network, a, b = build()
    baseline = network.latency
    injector = FailureInjector(network)
    injector.reorder_window(at=1.0, duration=1.0, factor=50.0)
    observed = {}
    sim.schedule_at(1.5, lambda: observed.setdefault("during", network.latency))
    sim.schedule_at(3.0, lambda: observed.setdefault("after", network.latency))
    sim.run()
    assert observed["during"].jitter == baseline.jitter * 50.0
    assert observed["after"] == baseline


def test_overlapping_reorder_windows_restore_baseline():
    """Regression: the old capture-and-restore scheme re-imposed the
    first window's inflation forever once a second window overlapped."""
    sim, network, a, b = build()
    baseline = network.latency
    injector = FailureInjector(network)
    injector.reorder_window(at=1.0, duration=2.0, factor=10.0)  # [1, 3)
    injector.reorder_window(at=2.0, duration=2.0, factor=4.0)  # [2, 4)
    observed = {}
    sim.schedule_at(2.5, lambda: observed.setdefault("both", network.latency))
    sim.schedule_at(3.5, lambda: observed.setdefault("second", network.latency))
    sim.schedule_at(4.5, lambda: observed.setdefault("after", network.latency))
    sim.run()
    # the strongest open window governs, relative to the *baseline*
    assert observed["both"].jitter == baseline.jitter * 10.0
    assert observed["second"].jitter == baseline.jitter * 4.0
    assert observed["after"] == baseline


def test_overlapping_loss_and_dup_windows_restore_baseline():
    sim, network, a, b = build()
    injector = FailureInjector(network)
    injector.loss_window(at=1.0, duration=2.0, drop_prob=1.0)
    injector.loss_window(at=2.0, duration=2.0, drop_prob=0.5)
    injector.duplicate_window(at=1.0, duration=2.0, dup_prob=1.0)
    injector.duplicate_window(at=2.0, duration=2.0, dup_prob=0.5)
    observed = {}
    sim.schedule_at(
        2.5,
        lambda: observed.setdefault("both", (network.drop_prob, network.dup_prob)),
    )
    sim.schedule_at(
        3.5,
        lambda: observed.setdefault("second", (network.drop_prob, network.dup_prob)),
    )
    sim.run()
    assert observed["both"] == (1.0, 1.0)
    assert observed["second"] == (0.5, 0.5)
    assert network.drop_prob == 0.0
    assert network.dup_prob == 0.0


def test_reliable_sequencer_submissions_survive_reorder_plus_partition():
    """Regression for sequencer traffic under composite faults: reliable
    zk submissions crossing a partitioned link *during* a reorder burst
    are delayed (retried with the inflated latency), never lost, and the
    sequencer still assigns every value exactly one slot."""
    from repro.coord.zookeeper import install_zookeeper
    from repro.sim import LatencyModel, Network, Process, Simulator

    class Submitter(Process):
        def recv(self, msg):
            raise AssertionError(f"unexpected {msg.kind}")

    class Subscriber(Process):
        def __init__(self, name):
            super().__init__(name)
            self.deliveries = []

        def recv(self, msg):
            self.deliveries.append(msg.payload)

    sim = Simulator(seed=5)
    network = Network(
        sim,
        latency=LatencyModel(base=0.001, jitter=0.002),
        reliable_kinds=("zk.submit", "zk.deliver"),
    )
    zk = install_zookeeper(network)
    submitter = Submitter("client")
    subscriber = Subscriber("replica")
    network.register(submitter)
    network.register(subscriber)
    zk.subscribe("t", "replica")
    injector = FailureInjector(network)
    injector.reorder_window(at=0.0, duration=0.3, factor=25.0)
    injector.partition("client", "zookeeper", at=0.05, duration=0.2)
    for index in range(20):
        sim.schedule_at(
            0.01 * index,
            lambda i=index: submitter.send("zookeeper", "zk.submit", ("t", i)),
        )
    sim.run()
    # every submission sequenced exactly once, a contiguous range of slots
    assert network.latency.jitter == 0.002
    assert zk.stats.submits == 20
    seqs = sorted(seq for _topic, seq, _value in subscriber.deliveries)
    assert seqs == list(range(20))
    assert sorted(zk.committed_order("t")) == list(range(20))
    assert network.retried > 0


def test_permanent_crash_times_the_session_out_instead_of_hanging():
    """A crash with no recovery must end in visible loss, not a retry
    loop that keeps the simulator from ever quiescing."""
    sim = Simulator(seed=3)
    network = Network(
        sim, reliable_kinds=("tcp",), retry_crashed=True, retry_limit=20
    )
    a, b = Echo("a"), Echo("b")
    network.register(a)
    network.register(b)
    FailureInjector(network).crash("b", at=0.0)  # never recovers
    sim.schedule_at(0.5, lambda: a.send("b", "tcp", "session"))
    sim.run()  # terminates
    assert b.got == []
    assert network.retried == 20
    assert network.dropped == 1


def test_crashed_destination_retries_reliable_kinds_when_enabled():
    sim = Simulator(seed=3)
    network = Network(sim, reliable_kinds=("tcp",), retry_crashed=True)
    a, b = Echo("a"), Echo("b")
    network.register(a)
    network.register(b)
    injector = FailureInjector(network)
    injector.crash_for("b", at=0.0, duration=1.0)
    sim.schedule_at(0.5, lambda: a.send("b", "tcp", "session"))
    sim.schedule_at(0.5, lambda: a.send("b", "data", "datagram"))
    sim.run()
    # the session resumes after the peer restarts; the datagram is gone
    assert b.got == ["session"]
    assert network.retried > 0
    assert network.dropped == 1
