"""Unit tests for fault injection."""

from __future__ import annotations

from repro.sim import FailureInjector, Network, Process, Simulator


class Echo(Process):
    def __init__(self, name):
        super().__init__(name)
        self.got = []

    def recv(self, msg):
        self.got.append(msg.payload)


def build():
    sim = Simulator(seed=1)
    network = Network(sim)
    a, b = Echo("a"), Echo("b")
    network.register(a)
    network.register(b)
    return sim, network, a, b


def test_crash_window_drops_messages():
    sim, network, a, b = build()
    injector = FailureInjector(network)
    injector.crash_for("b", at=1.0, duration=2.0)
    for t in (0.5, 1.5, 2.5, 3.5):
        sim.schedule_at(t, lambda t=t: a.send("b", "data", t))
    sim.run()
    # messages sent at 1.5 and 2.5 land inside the crash window
    assert all(p < 1.0 or p > 3.0 for p in b.got)
    assert len(b.got) == 2
    assert injector.crashes and injector.recoveries


def test_loss_window_restores_previous_probability():
    sim, network, a, b = build()
    injector = FailureInjector(network)
    injector.loss_window(at=1.0, duration=1.0, drop_prob=1.0)
    sim.schedule_at(0.5, lambda: a.send("b", "data", "before"))
    sim.schedule_at(1.5, lambda: a.send("b", "data", "during"))
    sim.schedule_at(3.0, lambda: a.send("b", "data", "after"))
    sim.run()
    assert "before" in b.got
    assert "during" not in b.got
    assert "after" in b.got
    assert network.drop_prob == 0.0
