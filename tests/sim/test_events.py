"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == pytest.approx(3.0)


def test_ties_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for tag in "abcde":
        sim.schedule(1.0, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == list("abcde")


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    sim.schedule(2.0, lambda: fired.append("y"))
    handle.cancel()
    sim.run()
    assert fired == ["y"]


def test_run_until_bounds_virtual_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == pytest.approx(2.0)
    sim.run()
    assert fired == [1, 5]


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == pytest.approx(7.5)


def test_events_can_schedule_events():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(1.0, lambda: fired.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == pytest.approx(2.0)


def test_max_events_is_a_safety_valve():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    sim.run(max_events=25)
    assert sim.fired == 25


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.schedule_at(4.0, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [pytest.approx(4.0)]


def test_determinism_same_seed_same_draws():
    draws_a = _draw_sequence(seed=42)
    draws_b = _draw_sequence(seed=42)
    draws_c = _draw_sequence(seed=43)
    assert draws_a == draws_b
    assert draws_a != draws_c


def _draw_sequence(seed: int) -> list[float]:
    sim = Simulator(seed=seed)
    draws: list[float] = []

    def draw():
        draws.append(sim.rng.random())
        if len(draws) < 10:
            sim.schedule(sim.rng.random(), draw)

    sim.schedule(0.0, draw)
    sim.run()
    return draws


# ----------------------------------------------------------------------
# pending accounting (regression: cancelled events used to count)
# ----------------------------------------------------------------------
def test_pending_excludes_cancelled_events():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    first.cancel()
    # the cancelled event still sits in the heap awaiting lazy removal,
    # but it will never fire — quiescence checks must not see it
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0
    assert sim.fired == 1


def test_double_cancel_decrements_pending_once():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.pending == 1


def test_stale_handle_cancel_after_recycle_is_noop():
    sim = Simulator()
    fired = []
    stale = sim.schedule(0.5, lambda: fired.append("a"))
    sim.run()
    # the fired event's pooled record is recycled into the next one; the
    # stale handle must not be able to kill its successor
    sim.schedule(1.0, lambda: fired.append("b"))
    stale.cancel()
    sim.run()
    assert fired == ["a", "b"]
    assert sim.fired == 2


# ----------------------------------------------------------------------
# fire-and-forget scheduling and wakers
# ----------------------------------------------------------------------
def test_post_fires_with_args():
    sim = Simulator()
    fired = []
    sim.post(1.0, fired.append, "x")
    sim.post(0.5, fired.append, "y")
    sim.run()
    assert fired == ["y", "x"]


def test_post_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.post(1.0, lambda: sim.post_at(4.0, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [pytest.approx(4.0)]


def test_post_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.post(-0.1, lambda: None)


def test_waker_coalesces_arms():
    sim = Simulator()
    fired = []
    wake = sim.waker(1.0, lambda: fired.append(sim.now))
    wake.arm()
    wake.arm()
    wake.arm()
    assert sim.pending == 1
    sim.run()
    assert fired == [pytest.approx(1.0)]


def test_waker_rearms_from_its_own_fn():
    sim = Simulator()
    fired = []

    def tick():
        fired.append(sim.now)
        if len(fired) < 3:
            wake.arm()

    wake = sim.waker(1.0, tick)
    wake.arm()
    sim.run()
    assert fired == [pytest.approx(t) for t in (1.0, 2.0, 3.0)]


def test_waker_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.waker(-1.0, lambda: None)


# ----------------------------------------------------------------------
# tick_delay float accumulation at long horizons
# ----------------------------------------------------------------------
def test_repeated_tick_delay_drift_is_bounded():
    # A BloomNode waker re-arms at now + tick_delay every firing; with a
    # binary-unrepresentable delay the clock accumulates one rounding per
    # tick.  The drift after N ticks must stay far below the delay itself
    # and the clock must never go backwards.
    sim = Simulator()
    delay = 0.0005  # not representable in base 2
    ticks = 10_000
    times = []

    def tick():
        times.append(sim.now)
        if len(times) < ticks:
            sim.post(delay, tick)

    sim.post(delay, tick)
    sim.run()
    assert times == sorted(times)
    drift = abs(sim.now - ticks * delay)
    assert drift < 1e-9, f"accumulated {drift} over {ticks} ticks"
