"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == pytest.approx(3.0)


def test_ties_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for tag in "abcde":
        sim.schedule(1.0, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == list("abcde")


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("x"))
    sim.schedule(2.0, lambda: fired.append("y"))
    handle.cancel()
    sim.run()
    assert fired == ["y"]


def test_run_until_bounds_virtual_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == pytest.approx(2.0)
    sim.run()
    assert fired == [1, 5]


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == pytest.approx(7.5)


def test_events_can_schedule_events():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(1.0, lambda: fired.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == pytest.approx(2.0)


def test_max_events_is_a_safety_valve():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    sim.run(max_events=25)
    assert sim.fired == 25


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.schedule_at(4.0, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [pytest.approx(4.0)]


def test_determinism_same_seed_same_draws():
    draws_a = _draw_sequence(seed=42)
    draws_b = _draw_sequence(seed=42)
    draws_c = _draw_sequence(seed=43)
    assert draws_a == draws_b
    assert draws_a != draws_c


def _draw_sequence(seed: int) -> list[float]:
    sim = Simulator(seed=seed)
    draws: list[float] = []

    def draw():
        draws.append(sim.rng.random())
        if len(draws) < 10:
            sim.schedule(sim.rng.random(), draw)

    sim.schedule(0.0, draw)
    sim.run()
    return draws
