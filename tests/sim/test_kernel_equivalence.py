"""Differential golden-trace suite: fast kernel vs the seed scheduler.

The fast kernel (``repro.sim.events``) claims to be a pure representation
change over the seed scheduler (``repro.sim.events_ref``): pooled records
instead of handle objects, batch-pop instead of per-event bookkeeping,
wakers instead of guard flags.  These tests are the proof obligation —
every registered app, under every strategy, across several seeds, must
produce **identical** traces, virtual times, event counts, committed
state, and oracle verdicts under both ``REPRO_SIM_KERNEL`` values.

Any observable divergence means the fast kernel changed scheduling
semantics (event order, RNG draw sequence, or bound handling) and fails
here before it can silently perturb a figure or an audit cell.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager

import pytest

from repro.api.registry import app_names, audit_app_names, get_app
from repro.chaos.oracle import classify_runs
from repro.chaos.schedule import (
    Crash,
    Duplicate,
    FaultSchedule,
    Loss,
    Partition,
    Reorder,
    baseline,
)
from repro.sim import KERNELS

SEEDS = (1, 2, 3)


@contextmanager
def kernel(name: str):
    """Select a sim kernel for the enclosed block via the environment."""
    assert name in KERNELS
    previous = os.environ.get("REPRO_SIM_KERNEL")
    os.environ["REPRO_SIM_KERNEL"] = name
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_SIM_KERNEL", None)
        else:
            os.environ["REPRO_SIM_KERNEL"] = previous


def _fingerprint(cluster, metrics=None) -> dict:
    """Everything observable about a finished run, exactly."""
    return {
        "trace": tuple(cluster.trace._rows),
        "now": cluster.sim.now,
        "fired": cluster.sim.fired,
        "pending": cluster.sim.pending,
        "metrics": metrics,
    }


def _matrix() -> list[tuple[str, str]]:
    return [
        (name, strategy)
        for name in app_names()
        for strategy in get_app(name).strategies
    ]


# ----------------------------------------------------------------------
# every registered app x strategy x seed
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("app_name,strategy", _matrix())
def test_app_runs_identically_on_both_kernels(app_name, strategy, seed):
    prints = {}
    for name in KERNELS:
        with kernel(name):
            outcome = get_app(app_name).run(strategy, seed=seed, smoke=True)
        prints[name] = _fingerprint(outcome.cluster, outcome.metrics)
    assert prints["fast"]["trace"] == prints["ref"]["trace"]
    assert prints["fast"] == prints["ref"]


# ----------------------------------------------------------------------
# audited observations: committed state and oracle verdicts
# ----------------------------------------------------------------------
def _profile_cells() -> list[tuple[str, str, int]]:
    cells = []
    for name in audit_app_names():
        app = get_app(name)
        for strategy in app.audit_spec.strategies:
            for index in range(len(app.audit_spec.schedules(True))):
                cells.append((name, strategy, index))
    return cells


@pytest.mark.parametrize("app_name,strategy,schedule_index", _profile_cells())
def test_audit_observation_identical_across_kernels(
    app_name, strategy, schedule_index
):
    app = get_app(app_name)
    schedule = app.audit_spec.schedules(True)[schedule_index]
    observations = {}
    for name in KERNELS:
        with kernel(name):
            harness = app.harness(smoke=True)
            observations[name] = harness.observe(strategy, schedule, seed=11)
    assert observations["fast"] == observations["ref"]


@pytest.mark.parametrize("app_name", sorted(audit_app_names()))
def test_oracle_verdict_identical_across_kernels(app_name):
    """The whole classify pipeline — multiple seeds per kernel — agrees."""
    app = get_app(app_name)
    strategy = app.audit_spec.strategies[0]
    schedule = app.audit_spec.schedules(True)[0]
    verdicts = {}
    for name in KERNELS:
        with kernel(name):
            harness = app.harness(smoke=True)
            runs = [harness.observe(strategy, schedule, seed=s) for s in (1, 2)]
        verdicts[name] = classify_runs(runs)
    assert verdicts["fast"] == verdicts["ref"]


# ----------------------------------------------------------------------
# seeded-random fault schedules, run differentially
# ----------------------------------------------------------------------
def _random_schedule(rng: random.Random, roles: tuple[str, ...]) -> FaultSchedule:
    """A random mix of crash/loss/dup/reorder/partition faults.

    Times are normalized to [0, 1] like the canonical library; the
    harness scales them onto the app's horizon.
    """
    faults = []
    for _ in range(rng.randint(1, 4)):
        at = rng.uniform(0.02, 0.6)
        duration = rng.uniform(0.05, 0.35)
        kind = rng.randrange(5)
        if kind == 0:
            faults.append(Crash(rng.choice(roles), 0, at, duration))
        elif kind == 1:
            faults.append(Loss(at, duration, rng.uniform(0.1, 0.6)))
        elif kind == 2:
            faults.append(Duplicate(at, duration, rng.uniform(0.1, 0.6)))
        elif kind == 3:
            faults.append(Reorder(at, duration, rng.uniform(2.0, 10.0)))
        else:
            src, dst = rng.sample(roles, 2) if len(roles) > 1 else (roles[0],) * 2
            faults.append(Partition(src, 0, dst, 0, at, duration))
    return FaultSchedule(f"random-{rng.random():.6f}", tuple(faults))


@pytest.mark.parametrize("app_name", ("adnet", "wordcount"))
@pytest.mark.parametrize("schedule_seed", (101, 202, 303))
def test_random_fault_schedules_run_identically(app_name, schedule_seed):
    app = get_app(app_name)
    rng = random.Random(f"kernel-diff:{app_name}:{schedule_seed}")
    schedule = _random_schedule(rng, ("worker", "source"))
    strategy = rng.choice(app.audit_spec.strategies)
    observations = {}
    for name in KERNELS:
        with kernel(name):
            harness = app.harness(smoke=True)
            observations[name] = harness.observe(
                strategy, schedule, seed=schedule_seed
            )
    assert observations["fast"] == observations["ref"]


# ----------------------------------------------------------------------
# frame-level delivery is covered too
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", ("uncoordinated", "seal", "independent-seal"))
def test_framed_adnet_runs_identically(strategy):
    from repro.apps.ad_network import AdWorkload, run_ad_network

    workload = AdWorkload(
        ad_servers=3,
        entries_per_server=120,
        batch_size=30,
        sleep=0.1,
        campaigns=6,
        requests=3,
        report_replicas=2,
        frames=True,
    )
    prints = {}
    for name in KERNELS:
        with kernel(name):
            result = run_ad_network(strategy, workload=workload, seed=5)
        prints[name] = _fingerprint(
            result.cluster,
            {
                "processed": result.processed_count(),
                "completion": result.completion_time,
                "agree": result.replicas_agree,
            },
        )
        prints[name]["committed"] = {
            node: result.committed_state(node) for node in result.report_nodes
        }
    assert prints["fast"] == prints["ref"]


def test_baseline_schedule_is_equivalence_smoke():
    """The no-fault path through the harness also matches (fast sanity)."""
    app = get_app("kvs")
    observations = {}
    for name in KERNELS:
        with kernel(name):
            harness = app.harness(smoke=True)
            observations[name] = harness.observe(
                app.audit_spec.strategies[0], baseline(), seed=3
            )
    assert observations["fast"] == observations["ref"]
