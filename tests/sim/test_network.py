"""Unit tests for the simulated network."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import LatencyModel, Network, Process, Simulator


class Recorder(Process):
    """Collects every delivered message payload with its arrival time."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.received: list[tuple[float, object]] = []

    def recv(self, msg) -> None:
        self.received.append((self.now, msg.payload))


def build(seed=0, **kwargs):
    sim = Simulator(seed=seed)
    network = Network(sim, **kwargs)
    return sim, network


def test_basic_delivery():
    sim, network = build()
    a, b = Recorder("a"), Recorder("b")
    network.register(a)
    network.register(b)
    a_handle = network.process("a")
    assert a_handle is a
    sim.schedule(0.0, lambda: a.send("b", "data", 42))
    sim.run()
    assert [p for _, p in b.received] == [42]
    assert network.delivered == 1


def test_unknown_destination_raises():
    sim, network = build()
    a = Recorder("a")
    network.register(a)
    with pytest.raises(SimulationError):
        network.send("a", "ghost", "data", 1)


def test_duplicate_registration_rejected():
    _, network = build()
    network.register(Recorder("a"))
    with pytest.raises(SimulationError):
        network.register(Recorder("a"))


def test_messages_can_reorder():
    """With jitter, back-to-back sends may arrive out of order for some seed."""
    reordered = False
    for seed in range(40):
        sim, network = build(seed=seed, latency=LatencyModel(base=0.001, jitter=0.01))
        a, b = Recorder("a"), Recorder("b")
        network.register(a)
        network.register(b)

        def burst():
            for i in range(10):
                a.send("b", "data", i)

        sim.schedule(0.0, burst)
        sim.run()
        payloads = [p for _, p in b.received]
        assert sorted(payloads) == list(range(10))
        if payloads != sorted(payloads):
            reordered = True
            break
    assert reordered, "no seed produced a reordering; jitter model broken"


def test_zero_jitter_preserves_order():
    sim, network = build(latency=LatencyModel(base=0.001, jitter=0.0))
    a, b = Recorder("a"), Recorder("b")
    network.register(a)
    network.register(b)
    sim.schedule(0.0, lambda: [a.send("b", "data", i) for i in range(20)])
    sim.run()
    assert [p for _, p in b.received] == list(range(20))


def test_drop_probability_drops_messages():
    sim, network = build(seed=7, drop_prob=0.5)
    a, b = Recorder("a"), Recorder("b")
    network.register(a)
    network.register(b)
    sim.schedule(0.0, lambda: [a.send("b", "data", i) for i in range(200)])
    sim.run()
    assert network.dropped > 20
    assert len(b.received) == 200 - network.dropped


def test_duplication_delivers_twice():
    sim, network = build(seed=7, dup_prob=0.5)
    a, b = Recorder("a"), Recorder("b")
    network.register(a)
    network.register(b)
    sim.schedule(0.0, lambda: [a.send("b", "data", i) for i in range(100)])
    sim.run()
    assert network.duplicated > 10
    assert len(b.received) == 100 + network.duplicated


def test_crashed_process_drops_deliveries():
    sim, network = build()
    a, b = Recorder("a"), Recorder("b")
    network.register(a)
    network.register(b)
    b.crashed = True
    sim.schedule(0.0, lambda: a.send("b", "data", 1))
    sim.run()
    assert b.received == []
    assert network.dropped == 1


def test_observers_see_deliveries():
    sim, network = build()
    seen = []
    network.observe(lambda msg: seen.append(msg.payload))
    a, b = Recorder("a"), Recorder("b")
    network.register(a)
    network.register(b)
    sim.schedule(0.0, lambda: a.send("b", "data", "hello"))
    sim.run()
    assert seen == ["hello"]


def test_same_seed_same_delivery_times():
    def run(seed):
        sim, network = build(seed=seed, latency=LatencyModel(0.001, 0.01))
        a, b = Recorder("a"), Recorder("b")
        network.register(a)
        network.register(b)
        sim.schedule(0.0, lambda: [a.send("b", "data", i) for i in range(10)])
        sim.run()
        return b.received

    assert run(5) == run(5)
    assert run(5) != run(6)


def test_on_start_hook_runs():
    sim, network = build()

    class Starter(Recorder):
        started = False

        def on_start(self):
            self.started = True

    s = Starter("s")
    network.register(s)
    network.start()
    assert s.started
