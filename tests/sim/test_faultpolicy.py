"""Unit tests for the shared delivery-fault policy module."""

from __future__ import annotations

import random

import pytest

from repro.sim import faultpolicy
from repro.sim.faultpolicy import (
    DELIVER,
    DROP,
    RETRY,
    WindowSet,
    delivery_action,
    reorder_combine,
    retry_action,
    send_copies,
)
from repro.sim.network import LatencyModel


# ----------------------------------------------------------------------
# send_copies
# ----------------------------------------------------------------------
def test_reliable_kinds_are_exempt_from_loss_and_duplication():
    rng = random.Random(0)
    for _ in range(50):
        assert send_copies(rng, reliable=True, drop_prob=1.0, dup_prob=1.0) == 1


def test_send_copies_loss_wins_over_duplication():
    rng = random.Random(0)
    assert send_copies(rng, reliable=False, drop_prob=1.0, dup_prob=1.0) == 0


def test_send_copies_duplication():
    rng = random.Random(0)
    assert send_copies(rng, reliable=False, drop_prob=0.0, dup_prob=1.0) == 2


def test_send_copies_draws_nothing_when_probs_zero():
    """Zero-prob paths must not consume RNG state (seed digests pin this)."""
    rng_a, rng_b = random.Random(7), random.Random(7)
    send_copies(rng_a, reliable=False, drop_prob=0.0, dup_prob=0.0)
    assert rng_a.random() == rng_b.random()


# ----------------------------------------------------------------------
# delivery_action
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "reliable,blocked,known,crashed,retry_crashed,expected",
    [
        # clear path delivers
        (False, False, True, False, False, DELIVER),
        (True, False, True, False, False, DELIVER),
        # blocked link: reliable retries, unreliable drops
        (True, True, True, False, False, RETRY),
        (False, True, True, False, False, DROP),
        # crashed destination: drop, unless a reliable session with
        # retry_crashed holds the message for redelivery
        (False, False, True, True, False, DROP),
        (True, False, True, True, False, DROP),
        (True, False, True, True, True, RETRY),
        (False, False, True, True, True, DROP),
        # unknown destination never retries
        (True, False, False, False, True, DROP),
    ],
)
def test_delivery_action_table(
    reliable, blocked, known, crashed, retry_crashed, expected
):
    assert (
        delivery_action(
            reliable=reliable,
            link_blocked=blocked,
            dst_known=known,
            dst_crashed=crashed,
            retry_crashed=retry_crashed,
        )
        is expected
    )


def test_retry_action_gives_up_at_limit():
    assert retry_action(0, 3) is RETRY
    assert retry_action(2, 3) is RETRY
    assert retry_action(3, 3) is DROP
    assert retry_action(10, 3) is DROP


# ----------------------------------------------------------------------
# window composition
# ----------------------------------------------------------------------
def test_windowset_restores_baseline_after_overlap():
    windows = WindowSet()
    value = 0.1  # the baseline
    value = windows.begin(0.5, value)
    assert value == 0.5
    value = windows.begin(0.3, value)
    assert value == 0.5  # max of open windows
    value = windows.end(0.5)
    assert value == 0.3
    value = windows.end(0.3)
    assert value == 0.1  # baseline restored when the last window closes
    assert not windows.active


def test_reorder_combine_scales_jitter():
    base = LatencyModel(base=0.001, jitter=0.002)
    combined = reorder_combine(base, [3.0, 5.0], LatencyModel)
    assert combined.base == base.base
    assert combined.jitter == pytest.approx(0.01)
    assert reorder_combine(base, [], LatencyModel) is base


def test_reorder_combine_zero_jitter_baseline():
    base = LatencyModel(base=0.004, jitter=0.0)
    combined = reorder_combine(base, [2.0], LatencyModel)
    assert combined.jitter == pytest.approx(0.008)


def test_policy_constants_are_distinct():
    assert len({faultpolicy.DELIVER, faultpolicy.DROP, faultpolicy.RETRY}) == 3
