"""Property-based tests for the simulation kernel and network."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import LatencyModel, Network, Process, Simulator


class Sink(Process):
    def __init__(self, name):
        super().__init__(name)
        self.deliveries: list[tuple[float, object]] = []

    def recv(self, msg):
        self.deliveries.append((self.now, msg.payload))


class TestKernelProperties:
    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40))
    def test_events_fire_in_nondecreasing_time(self, delays):
        sim = Simulator()
        fired: list[float] = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=20),
        st.floats(min_value=0, max_value=12),
    )
    def test_run_until_never_overshoots(self, delays, until):
        sim = Simulator()
        for delay in delays:
            sim.schedule(delay, lambda: None)
        sim.run(until=until)
        assert sim.now <= until + 1e-9

    @given(st.integers(min_value=0, max_value=2**31), st.integers(1, 30))
    def test_identical_seeds_identical_runs(self, seed, n):
        def run(seed):
            sim = Simulator(seed=seed)
            values = []

            def emit():
                values.append((round(sim.now, 9), sim.rng.random()))
                if len(values) < n:
                    sim.schedule(sim.rng.random(), emit)

            sim.schedule(0.0, emit)
            sim.run()
            return values

        assert run(seed) == run(seed)


class TestNetworkProperties:
    @settings(max_examples=25)
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=1, max_value=40),
    )
    def test_lossless_network_delivers_everything(self, seed, count):
        sim = Simulator(seed=seed)
        network = Network(sim, latency=LatencyModel(0.001, 0.01))
        a, b = Sink("a"), Sink("b")
        network.register(a)
        network.register(b)
        sim.schedule(0.0, lambda: [a.send("b", "m", i) for i in range(count)])
        sim.run()
        assert sorted(payload for _, payload in b.deliveries) == list(range(count))
        assert network.sent == count
        assert network.delivered == count

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=1000))
    def test_conservation_sent_equals_delivered_plus_dropped(self, seed):
        sim = Simulator(seed=seed)
        network = Network(sim, drop_prob=0.3, latency=LatencyModel(0.001, 0.0))
        a, b = Sink("a"), Sink("b")
        network.register(a)
        network.register(b)
        sim.schedule(0.0, lambda: [a.send("b", "m", i) for i in range(100)])
        sim.run()
        assert network.delivered + network.dropped == network.sent

    @settings(max_examples=25)
    @given(st.integers(min_value=0, max_value=1000))
    def test_duplication_conservation(self, seed):
        sim = Simulator(seed=seed)
        network = Network(sim, dup_prob=0.3, latency=LatencyModel(0.001, 0.0))
        a, b = Sink("a"), Sink("b")
        network.register(a)
        network.register(b)
        sim.schedule(0.0, lambda: [a.send("b", "m", i) for i in range(100)])
        sim.run()
        assert len(b.deliveries) == 100 + network.duplicated

    @settings(max_examples=10)
    @given(st.integers(min_value=0, max_value=100))
    def test_reliable_kinds_never_dropped(self, seed):
        sim = Simulator(seed=seed)
        network = Network(
            sim, drop_prob=1.0, reliable_kinds={"ctl"},
            latency=LatencyModel(0.001, 0.0),
        )
        a, b = Sink("a"), Sink("b")
        network.register(a)
        network.register(b)
        sim.schedule(0.0, lambda: [a.send("b", "ctl", i) for i in range(10)])
        sim.schedule(0.0, lambda: [a.send("b", "data", i) for i in range(10)])
        sim.run()
        kinds = [p for _, p in b.deliveries]
        assert len(kinds) == 10  # only the control messages survive
