"""Causal span tracing and the oracle's divergence explanations."""

from __future__ import annotations

from repro.chaos.harnesses import harness_for
from repro.chaos.oracle import ObservedLabel, RunObservation, classify_runs
from repro.obs.spans import SpanTracker, divergence_explain, format_slice
from repro.sim.network import Message


def _msg(kind, payload, *, src="a", dst="b", time=1.0):
    return Message(src, dst, kind, payload, time, 1)


def test_frame_delivery_indexes_rows_under_batch_lineage():
    spans = SpanTracker()
    frame = (("tuple", ("w1",)), ("tuple", ("w2",)), ("punct",))
    spans.note_delivery(_msg("st.chan", ("Spout", 3, 1, 0, frame)), 1.0)
    assert spans.lineage_of(("w1",)) == "batch:3"
    assert spans.lineage_of(("w2",)) == "batch:3"
    ((time, lineage, event, node, detail),) = spans.events
    assert (time, lineage, event, node) == (1.0, "batch:3", "frame", "b")
    assert "items=2" in detail and "+punct" in detail


def test_pure_punctuation_frame_is_a_punct_event():
    spans = SpanTracker()
    spans.note_delivery(_msg("st.chan", ("Spout", 3, 1, 5, (("punct",),))), 2.0)
    assert spans.events[0][2] == "punct"


def test_seal_and_sequencer_lineages():
    spans = SpanTracker()
    spans.note_delivery(
        _msg("seal.data", ("clicks", 0, "c0", ("ad1", 3), "s0")), 0.5
    )
    spans.note_delivery(
        _msg("seal.frame", ("clicks", 1, (("c0", ("ad2", 4)), (("k",), ("ad3", 5))), "s0")),
        0.6,
    )
    spans.note_delivery(_msg("seal.punct", ("clicks", 2, "c0", "s0")), 0.7)
    spans.note_delivery(_msg("zk.submit", ("orders", ("tbl", ("r",)))), 0.8)
    spans.note_delivery(_msg("zk.deliver", ("orders", 0, ("tbl", ("r",)))), 0.9)
    assert spans.lineage_of(("ad1", 3)) == "part:c0"
    assert spans.lineage_of(("ad2", 4)) == "part:c0"
    # non-string partitions render via repr
    assert spans.lineage_of(("ad3", 5)) == "part:('k',)"
    # the sequencer value is indexed both as sent and flattened
    assert spans.lineage_of(("tbl", ("r",))) == "topic:orders"
    assert spans.lineage_of(("tbl", "r")) == "topic:orders"
    assert [event[2] for event in spans.slice_for("part:c0")] == [
        "seal-data",
        "seal-frame",
        "seal-vote",
    ]


def test_lineage_of_strips_a_leading_tag():
    spans = SpanTracker()
    spans.note_delivery(_msg("bloom.chan", ("req", ("q0", "ad1"))), 0.1)
    assert spans.lineage_of(("q0", "ad1")) == "chan:req"
    # replicas often commit ("table", *wire_row)
    assert spans.lineage_of(("responses", "q0", "ad1")) == "chan:req"
    assert spans.lineage_of("not-a-tuple") is None
    assert spans.lineage_of(("unseen",)) is None


def test_event_cap_counts_drops(monkeypatch):
    monkeypatch.setattr("repro.obs.spans._MAX_EVENTS", 2)
    spans = SpanTracker()
    for index in range(4):
        spans.note_event(float(index), "x", "e")
    assert len(spans.events) == 2
    assert spans.dropped == 2


def test_format_slice_elides_the_middle():
    spans = SpanTracker()
    for index in range(12):
        spans.note_event(float(index), "batch:1", "frame", "n")
    lines = format_slice(spans, "batch:1", limit=4)
    assert len(lines) == 5
    assert "(8 events elided)" in lines[2]
    assert format_slice(spans, "batch:404") == []


def test_to_rows_reprs_structured_detail():
    spans = SpanTracker()
    spans.note_event(0.5, "batch:1", "frame", "n", ("structured", 1))
    spans.note_event(0.6, "batch:1", "ack", "n", "plain")
    rows = spans.to_rows()
    assert rows[0]["detail"] == "('structured', 1)"
    assert rows[1] == {
        "t": 0.6, "lineage": "batch:1", "event": "ack", "node": "n",
        "detail": "plain",
    }


def test_divergence_explain_resolves_disputed_rows():
    spans = SpanTracker()
    spans.note_delivery(_msg("zk.submit", ("orders", ("tbl", ("r1",)))), 0.5)
    spans.note_delivery(_msg("zk.deliver", ("orders", 0, ("tbl", ("r1",)))), 0.6)
    obs = RunObservation(
        seed=7,
        committed={"a": frozenset({("tbl", "r1")}), "b": frozenset()},
        emitted={"a": frozenset(), "b": frozenset()},
        spans=spans,
    )
    lines = divergence_explain(obs)
    assert lines and lines[0].startswith("causal slice for ('tbl', 'r1') (topic:orders")
    assert any("submit" in line for line in lines)


def test_divergence_explain_without_spans_is_empty():
    obs = RunObservation(
        seed=7,
        committed={"a": frozenset({("x",)}), "b": frozenset()},
        emitted={"a": frozenset(), "b": frozenset()},
    )
    assert divergence_explain(obs) == ()


def test_oracle_attaches_causal_slice_to_seeded_anomaly():
    """End to end: a seeded uncoordinated adnet run exhibits Inst/Diverge
    and the verdict's evidence carries the disputed row's causal slice."""
    harness = harness_for("adnet", smoke=True)
    schedule = harness.schedule_named("baseline")
    observations = [
        harness.observe("uncoordinated", schedule, seed) for seed in (7, 11)
    ]
    assert all(obs.spans is not None for obs in observations)
    verdict = classify_runs(observations)
    assert verdict.observed.severity >= ObservedLabel.INST.severity
    assert any(line.startswith("causal slice for") for line in verdict.evidence), (
        verdict.evidence
    )
