"""The telemetry hub: instruments, scoping, and runtime attachment."""

from __future__ import annotations

from repro.obs.telemetry import Telemetry, activate, current
from repro.sim import make_simulator
from repro.sim.network import LatencyModel, Network, Process


class _Sink(Process):
    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.got = []

    def recv(self, msg) -> None:
        self.got.append(msg)


def test_counters_gauges_summaries():
    hub = Telemetry()
    hub.count("hits", "a")
    hub.count("hits", "a", by=2)
    hub.count("hits", "b")
    assert hub.counter("hits")["a"] == 3
    assert hub.total("hits") == 4
    assert hub.counter("never") == {}
    hub.gauge("depth", 7.5)
    hub.observe("latency", 1.0)
    hub.observe("latency", 3.0)
    snapshot = hub.snapshot()
    assert snapshot["counters"]["hits"] == {"a": 3, "b": 1}
    assert snapshot["gauges"]["depth"] == 7.5
    assert snapshot["summaries"]["latency"]["mean"] == 2.0
    assert snapshot["summaries"]["latency"]["min"] == 1.0
    assert snapshot["summaries"]["latency"]["max"] == 3.0


def test_current_is_none_by_default_and_nests():
    assert current() is None
    outer, inner = Telemetry(), Telemetry()
    with activate(outer):
        assert current() is outer
        with inner.activate():
            assert current() is inner
        assert current() is outer
    assert current() is None


def test_activation_survives_exceptions():
    hub = Telemetry()
    try:
        with hub.activate():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert current() is None


def test_make_simulator_attaches_active_hub():
    assert make_simulator(seed=0).telemetry is None
    hub = Telemetry()
    with hub.activate():
        sim = make_simulator(seed=0)
    assert sim.telemetry is hub
    # attachment is by reference at build time, not re-resolved later
    assert make_simulator(seed=0).telemetry is None


def test_profiler_rides_the_hub_onto_the_simulator():
    profiler_marker = object()
    hub = Telemetry(profiler=profiler_marker)
    with hub.activate():
        sim = make_simulator(seed=0)
    assert sim.profiler is profiler_marker


def test_network_reports_sends_and_deliveries_through_the_hub():
    hub = Telemetry(spans=True)
    with hub.activate():
        sim = make_simulator(seed=0)
    net = Network(sim, latency=LatencyModel(base=0.001, jitter=0.0))
    net.register(_Sink("a"))
    net.register(_Sink("b"))
    net.process("a").send("b", "zk.submit", ("orders", ("row", 1)))
    net.process("a").send("b", "anything.else", None)
    sim.run()
    planes = hub.counter("messages.plane")
    assert planes["coordination"] == 1
    assert planes["data"] == 1
    assert hub.counter("messages.kind")["zk.submit"] == 1
    assert hub.counter("messages.topic")["order:orders"] == 1
    # deliveries fed the span tracker
    assert hub.spans is not None and len(hub.spans.events) == 2


def test_note_decision_accrues_overhead_and_spans():
    hub = Telemetry(spans=True)
    hub.note_decision(
        "sequencer",
        topic="orders",
        overhead=0.005,
        lineage="topic:orders",
        node="zk",
        time=1.5,
        detail="seq=0",
    )
    hub.note_decision("retry", topic="st.chan")
    assert hub.counter("decisions")["sequencer"] == 1
    assert hub.counter("decisions.topic")["sequencer:orders"] == 1
    assert hub.sim_time_overhead == 0.005
    assert hub.spans.events == [(1.5, "topic:orders", "sequencer", "zk", "seq=0")]
