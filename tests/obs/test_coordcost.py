"""Coordination-cost accounting: taxonomy, reports, and app-level shares."""

from __future__ import annotations

import pytest

from repro.api import get_app
from repro.obs.coordcost import (
    COORDINATION_DECISIONS,
    PLANE_COORDINATION,
    PLANE_DATA,
    PLANE_DELIVERY,
    CoordCostReport,
    aggregate_coordcost,
    classify_message,
    coordcost_report,
)
from repro.obs.telemetry import Telemetry


def test_kind_literals_match_the_canonical_constants():
    """The classifier's literal wire vocabulary must never drift."""
    from repro.bloom.cluster import CHANNEL_MSG, INSERT_MSG
    from repro.coord import zookeeper as zk
    from repro.coord.sealing import DATA, FRAME, PUNCT
    from repro.obs import coordcost as cc
    from repro.storm.executor import ACK, CHAN
    from repro.storm.transactional import COMMITTED, READY, REACK

    assert cc._SEAL_DATA == DATA
    assert cc._SEAL_PUNCT == PUNCT
    assert cc._SEAL_FRAME == FRAME
    assert cc._ZK_SUBMIT == zk.SUBMIT
    assert cc._ZK_DELIVER == zk.DELIVER
    assert cc._ZK_ZNODE_KINDS == {zk.SET, zk.GET, zk.GET_REPLY, zk.SET_REPLY}
    assert cc._ST_CHAN == CHAN
    assert cc._ST_ACK == ACK
    assert cc._BLOOM_CHAN == CHANNEL_MSG
    assert cc._BLOOM_INSERT == INSERT_MSG
    for kind in (READY, COMMITTED, REACK):
        assert kind.startswith(cc._TXN_PREFIX)


@pytest.mark.parametrize(
    ("kind", "payload", "plane", "topic"),
    [
        ("seal.punct", ("clicks", 3, "c0", "server0"), PLANE_COORDINATION, "seal:clicks"),
        ("zk.submit", ("orders", ("row",)), PLANE_COORDINATION, "order:orders"),
        ("zk.deliver", ("orders", 0, ("row",)), PLANE_COORDINATION, "order:orders"),
        ("zk.set", ("producers/x", ["a"]), PLANE_COORDINATION, "znode"),
        ("zk.get", "producers/x", PLANE_COORDINATION, "znode"),
        ("zk.get_reply", ("producers/x", ["a"]), PLANE_COORDINATION, "znode"),
        ("zk.set_reply", "producers/x", PLANE_COORDINATION, "znode"),
        ("txn.ready", 3, PLANE_COORDINATION, "txn"),
        ("txn.committed", 3, PLANE_COORDINATION, "txn"),
        ("st.ack", 3, PLANE_DELIVERY, ""),
        ("st.chan", ("Spout", 0, 1, 0, (("tuple", ("w",)),)), PLANE_DATA, ""),
        ("seal.data", ("clicks", 0, "c0", ("row",), "s0"), PLANE_DATA, "seal:clicks"),
        ("seal.frame", ("clicks", 1, (("c0", ("row",)),), "s0"), PLANE_DATA, "seal:clicks"),
        ("bloom.chan", ("req", ("row",)), PLANE_DATA, ""),
        ("unknown.kind", None, PLANE_DATA, ""),
    ],
)
def test_classify_message_taxonomy(kind, payload, plane, topic):
    assert classify_message(kind, payload) == (plane, topic)


def test_classify_message_never_raises_on_malformed_payloads():
    assert classify_message("seal.punct", None) == (PLANE_COORDINATION, "")
    assert classify_message("zk.submit", 7)[0] == PLANE_DATA
    assert classify_message("seal.data", ()) == (PLANE_DATA, "")


def test_report_properties_and_schema():
    report = CoordCostReport(
        messages_sent=10,
        planes={PLANE_DATA: 6, PLANE_COORDINATION: 3, PLANE_DELIVERY: 1},
        kinds={"zk.submit": 3},
        topics={"order:t": 3},
        decisions={"sequencer": 3, "replay": 2},
        decision_topics={"sequencer:t": 3},
        sim_time_overhead=0.01,
    )
    assert report.coordination_messages == 3
    assert report.coordination_share == 0.3
    assert report.coordination_decisions == 3  # replay is delivery machinery
    block = report.to_dict()
    assert block["schema_version"] == 1
    assert block["coordination_share"] == 0.3
    assert "replay" not in COORDINATION_DECISIONS


def test_empty_report_has_zero_share():
    report = coordcost_report(Telemetry())
    assert report.messages_sent == 0
    assert report.coordination_share == 0.0


def test_aggregate_coordcost_sums_and_recomputes_share():
    hub = Telemetry()
    hub.note_send("zk.submit", ("t", "v"))
    hub.note_send("st.chan", ("S", 0, 1, 0, ()))
    block = coordcost_report(hub).to_dict()
    merged = aggregate_coordcost([block, block, None])
    assert merged["runs"] == 2
    assert merged["messages_sent"] == 4
    assert merged["coordination_messages"] == 2
    assert merged["coordination_share"] == 0.5
    assert aggregate_coordcost([None, None]) is None


def test_app_shares_uncoordinated_vs_sealed_vs_ordered():
    """The headline claim: coordination share ~0 without coordination,
    strictly positive with it, and ordering costs more than sealing."""
    shares = {}
    for strategy in ("uncoordinated", "seal", "ordered"):
        hub = Telemetry()
        outcome = get_app("adnet").run(strategy, seed=1, smoke=True, telemetry=hub)
        block = outcome.metrics["coordcost"]
        assert block["schema_version"] == 1
        assert block["messages_sent"] > 0
        shares[strategy] = block["coordination_share"]
    assert shares["uncoordinated"] == 0.0
    assert shares["seal"] > 0.0
    assert shares["ordered"] > shares["seal"]
