"""Run directories: write/validate roundtrip and schema enforcement."""

from __future__ import annotations

import json

import pytest

from repro.api import get_app
from repro.errors import ObsError
from repro.obs.rundir import ARTIFACTS, RUNDIR_SCHEMA_VERSION, validate_rundir, write_rundir
from repro.obs.telemetry import Telemetry


@pytest.fixture(scope="module")
def sealed_outcome():
    hub = Telemetry(spans=True)
    outcome = get_app("adnet").run("seal", seed=1, smoke=True, telemetry=hub)
    return outcome, hub


def test_write_validate_roundtrip(tmp_path, sealed_outcome):
    outcome, hub = sealed_outcome
    rundir = write_rundir(tmp_path / "run", outcome, telemetry=hub)
    assert sorted(p.name for p in rundir.iterdir()) == sorted(ARTIFACTS)
    info = validate_rundir(rundir)
    assert info["meta"]["app"] == "adnet"
    assert info["meta"]["strategy"] == "seal"
    assert info["meta"]["schema_version"] == RUNDIR_SCHEMA_VERSION
    assert info["rows"]["trace.jsonl"] > 0
    assert info["rows"]["spans.jsonl"] > 0
    assert info["coordcost"]["coordination_share"] > 0.0
    # every artifact is strict JSON
    for name in ("meta.json", "metrics.json", "coordcost.json"):
        json.loads((rundir / name).read_text())


def test_missing_artifact_is_rejected(tmp_path, sealed_outcome):
    outcome, hub = sealed_outcome
    rundir = write_rundir(tmp_path / "run", outcome, telemetry=hub)
    (rundir / "coordcost.json").unlink()
    with pytest.raises(ObsError, match="missing coordcost.json"):
        validate_rundir(rundir)


def test_schema_version_mismatch_is_rejected(tmp_path, sealed_outcome):
    outcome, hub = sealed_outcome
    rundir = write_rundir(tmp_path / "run", outcome, telemetry=hub)
    meta = json.loads((rundir / "meta.json").read_text())
    meta["schema_version"] = 99
    (rundir / "meta.json").write_text(json.dumps(meta))
    with pytest.raises(ObsError, match="schema_version"):
        validate_rundir(rundir)


def test_missing_meta_field_is_rejected(tmp_path, sealed_outcome):
    outcome, hub = sealed_outcome
    rundir = write_rundir(tmp_path / "run", outcome, telemetry=hub)
    meta = json.loads((rundir / "meta.json").read_text())
    del meta["strategy"]
    (rundir / "meta.json").write_text(json.dumps(meta))
    with pytest.raises(ObsError, match="strategy"):
        validate_rundir(rundir)


def test_malformed_jsonl_line_is_rejected(tmp_path, sealed_outcome):
    outcome, hub = sealed_outcome
    rundir = write_rundir(tmp_path / "run", outcome, telemetry=hub)
    with (rundir / "trace.jsonl").open("a") as handle:
        handle.write("not json\n")
    with pytest.raises(ObsError, match="trace.jsonl"):
        validate_rundir(rundir)


def test_nonexistent_directory_is_rejected(tmp_path):
    with pytest.raises(ObsError, match="does not exist"):
        validate_rundir(tmp_path / "nope")


def test_rundir_collision_lands_on_suffixed_sibling(tmp_path, sealed_outcome):
    outcome, hub = sealed_outcome
    first = write_rundir(tmp_path / "run", outcome, telemetry=hub)
    second = write_rundir(tmp_path / "run", outcome, telemetry=hub)
    third = write_rundir(tmp_path / "run", outcome, telemetry=hub)
    assert first == tmp_path / "run"
    assert second == tmp_path / "run-2"
    assert third == tmp_path / "run-3"
    for rundir in (first, second, third):
        validate_rundir(rundir)


def test_rundir_concurrent_writers_never_collide(tmp_path, sealed_outcome):
    """The pooled-audit regression: many writers, one target name.

    Every writer must come back with its own fully-formed directory —
    no clobbered artifacts, no half-published runs, no lost writers.
    """
    from concurrent.futures import ThreadPoolExecutor

    outcome, hub = sealed_outcome
    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = [
            pool.submit(write_rundir, tmp_path / "run", outcome, hub)
            for _ in range(8)
        ]
        paths = [future.result() for future in futures]
    assert len(set(paths)) == 8  # every writer got a distinct directory
    for rundir in paths:
        info = validate_rundir(rundir)
        assert info["meta"]["app"] == "adnet"
    # no temp build directories leak into the parent
    leftovers = [p.name for p in tmp_path.iterdir() if p.name.startswith(".")]
    assert leftovers == []


def test_rundir_without_hub_still_validates(tmp_path):
    outcome = get_app("wordcount").run("eager", seed=1, smoke=True)
    rundir = write_rundir(tmp_path / "plain", outcome)
    info = validate_rundir(rundir)
    assert info["coordcost"] == {}  # no hub: legitimately empty
    assert info["rows"]["spans.jsonl"] == 0
    assert info["rows"]["trace.jsonl"] > 0
