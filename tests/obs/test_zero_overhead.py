"""Zero observational overhead: telemetry never perturbs replay.

Enabling the hub (even with span tracing) must leave traces, virtual
time, event counts, and the base metrics byte-identical to an
uninstrumented run — the digests here are computed exactly as the pinned
seed-digest regression does, and checked against the checked-in pins
where one exists.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.api import get_app
from repro.exec.digests import outcome_digest, pin_canon
from repro.obs.telemetry import Telemetry

from tests.integration.test_seed_digests import DIGEST_PATH

# One cell per coordination mechanism: storm sealing, seal protocol over
# znodes, the sequencer, a bloom query, and the transactional topology.
CELLS = (
    ("wordcount", "sealed"),
    ("wordcount", "transactional"),
    ("adnet", "seal"),
    ("adnet", "ordered"),
    ("kvs", "ordered"),
    ("q-thresh", "sealed"),
)
SEED = 1


def _digest_with_metrics(outcome, metrics) -> str:
    cluster = outcome.cluster
    payload = repr(
        pin_canon(
            (tuple(cluster.trace._rows), cluster.sim.now, cluster.sim.fired, metrics)
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@pytest.mark.parametrize(("app_name", "strategy"), CELLS)
def test_telemetry_does_not_perturb_replay(app_name, strategy):
    app = get_app(app_name)
    plain = app.run(strategy, seed=SEED, smoke=True)
    hub = Telemetry(spans=True)
    traced = app.run(strategy, seed=SEED, smoke=True, telemetry=hub)

    assert traced.cluster.trace._rows == plain.cluster.trace._rows
    assert traced.cluster.sim.now == plain.cluster.sim.now
    assert traced.cluster.sim.fired == plain.cluster.sim.fired

    base_metrics = {
        name: value
        for name, value in traced.metrics.items()
        if name not in ("coordcost", "profile")
    }
    assert base_metrics == plain.metrics
    assert _digest_with_metrics(traced, base_metrics) == outcome_digest(plain)

    # the instrumented run really did observe something
    assert traced.metrics["coordcost"]["messages_sent"] > 0


@pytest.mark.parametrize(("app_name", "strategy"), CELLS)
def test_instrumented_digest_matches_the_checked_in_pin(app_name, strategy):
    pinned = json.loads(DIGEST_PATH.read_text())
    key = f"{app_name}/{strategy}/{SEED}"
    assert key in pinned, f"{key} not covered by seed_digests.json"
    hub = Telemetry(spans=True)
    traced = get_app(app_name).run(strategy, seed=SEED, smoke=True, telemetry=hub)
    base_metrics = {
        name: value
        for name, value in traced.metrics.items()
        if name not in ("coordcost", "profile")
    }
    assert _digest_with_metrics(traced, base_metrics) == pinned[key]
