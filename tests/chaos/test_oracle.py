"""Unit tests for the consistency oracle's Figure 8 classification."""

from __future__ import annotations

import pytest

from repro.chaos.oracle import ObservedLabel, RunObservation, classify_runs
from repro.core.labels import Async, Diverge, Inst, Run, Seal


def obs(seed, committed, emitted=None, truth=None, order=None):
    return RunObservation(
        seed=seed,
        committed={k: frozenset(v) for k, v in committed.items()},
        emitted={
            k: frozenset(v) for k, v in (emitted or committed).items()
        },
        truth=frozenset(truth) if truth is not None else None,
        order=order,
    )


ROWS = frozenset({("a", 1), ("b", 2)})


def test_exactly_once_when_everything_matches():
    runs = [
        obs(seed, {"r0": ROWS, "r1": ROWS}, truth=ROWS) for seed in (7, 11)
    ]
    verdict = classify_runs(runs)
    assert verdict.observed is ObservedLabel.EXACT
    assert verdict.evidence == ()


def test_truth_deviation_is_async():
    short = ROWS - {("b", 2)}
    runs = [obs(seed, {"r0": short, "r1": short}, truth=ROWS) for seed in (7, 11)]
    verdict = classify_runs(runs)
    assert verdict.observed is ObservedLabel.ASYNC
    assert any("ground truth" in line for line in verdict.evidence)


def test_cross_seed_commit_divergence_is_run():
    runs = [
        obs(7, {"r0": ROWS, "r1": ROWS}),
        obs(11, {"r0": ROWS | {("c", 3)}, "r1": ROWS | {("c", 3)}}),
    ]
    verdict = classify_runs(runs)
    assert verdict.observed is ObservedLabel.RUN
    assert any("across seeds" in line for line in verdict.evidence)


def test_cross_seed_emitted_divergence_is_run():
    runs = [
        obs(7, {"r0": ROWS}, emitted={"r0": ROWS}),
        obs(11, {"r0": ROWS}, emitted={"r0": ROWS | {("c", 3)}}),
    ]
    assert classify_runs(runs).observed is ObservedLabel.RUN


def test_replica_emitted_divergence_is_inst():
    runs = [
        obs(
            7,
            {"r0": ROWS, "r1": ROWS},
            emitted={"r0": ROWS, "r1": ROWS | {("c", 3)}},
        )
    ]
    verdict = classify_runs(runs)
    assert verdict.observed is ObservedLabel.INST
    assert any("converged but emitted" in line for line in verdict.evidence)


def test_replica_state_divergence_is_diverge():
    runs = [obs(7, {"r0": ROWS, "r1": ROWS | {("c", 3)}})]
    verdict = classify_runs(runs)
    assert verdict.observed is ObservedLabel.DIVERGE
    assert any("disagree on committed state" in line for line in verdict.evidence)


def test_diverge_dominates_everything_else():
    runs = [
        obs(7, {"r0": ROWS, "r1": frozenset()}, truth=ROWS),
        obs(11, {"r0": ROWS, "r1": ROWS}, truth=ROWS),
    ]
    assert classify_runs(runs).observed is ObservedLabel.DIVERGE


def test_single_replica_observations_never_diverge():
    runs = [obs(7, {"store": ROWS}), obs(11, {"store": ROWS})]
    assert classify_runs(runs).observed is ObservedLabel.EXACT


def test_empty_observation_set_is_an_error():
    with pytest.raises(ValueError):
        classify_runs([])


def test_severities_align_with_figure8_labels():
    assert ObservedLabel.EXACT.severity == Seal("k").severity
    assert ObservedLabel.ASYNC.severity == Async().severity
    assert ObservedLabel.RUN.severity == Run().severity
    assert ObservedLabel.INST.severity == Inst().severity
    assert ObservedLabel.DIVERGE.severity == Diverge().severity


def test_soundness_is_the_lattice_order():
    runs = [obs(7, {"r0": ROWS, "r1": ROWS | {("c", 3)}})]
    verdict = classify_runs(runs)
    assert verdict.sound_for(Diverge())
    assert not verdict.sound_for(Inst())
    assert not verdict.sound_for(Async())
    exact = classify_runs([obs(7, {"r0": ROWS}, truth=ROWS)])
    assert exact.sound_for(Seal("k"))
    assert exact.sound_for(Async())


def test_describe_renders_evidence():
    runs = [obs(7, {"r0": ROWS, "r1": frozenset()})]
    text = classify_runs(runs).describe()
    assert text.startswith("observed Diverge")
    assert "seed 7" in text


class TestOrderConditionedComparison:
    """Cross-run ``Run`` judged conditional on the recorded order."""

    def test_different_orders_exempt_cross_run_divergence(self):
        # an ordered deployment legitimately commits different outputs
        # under different sequencer orders: no Run anomaly
        runs = [
            obs(7, {"r0": ROWS}, order=("a", "b")),
            obs(11, {"r0": ROWS | {("c", 3)}}, order=("b", "a")),
        ]
        assert classify_runs(runs).observed is ObservedLabel.EXACT

    def test_same_order_must_agree(self):
        # replay determinism: same decision log, same outputs — required
        runs = [
            obs(7, {"r0": ROWS}, order=("a", "b")),
            obs(11, {"r0": ROWS | {("c", 3)}}, order=("a", "b")),
        ]
        verdict = classify_runs(runs)
        assert verdict.observed is ObservedLabel.RUN
        assert any(
            "same recorded sequencer order" in line for line in verdict.evidence
        )

    def test_unordered_runs_keep_the_unconditional_comparison(self):
        runs = [
            obs(7, {"r0": ROWS}),
            obs(11, {"r0": ROWS | {("c", 3)}}),
        ]
        assert classify_runs(runs).observed is ObservedLabel.RUN

    def test_unordered_group_is_separate_from_ordered_runs(self):
        # the None group still compares unconditionally; a lone ordered
        # run has no partner and adds nothing
        runs = [
            obs(7, {"r0": ROWS}),
            obs(11, {"r0": ROWS | {("c", 3)}}),
            obs(13, {"r0": ROWS | {("d", 4)}}, order=("a",)),
        ]
        verdict = classify_runs(runs)
        assert verdict.observed is ObservedLabel.RUN
        assert not any(
            "same recorded sequencer order" in line for line in verdict.evidence
        )

    def test_replica_checks_unaffected_by_order(self):
        # ordering conditions only the cross-run block: replica
        # disagreement within one ordered run is still Diverge
        runs = [obs(7, {"r0": ROWS, "r1": frozenset()}, order=("a",))]
        assert classify_runs(runs).observed is ObservedLabel.DIVERGE

    def test_order_normalized_to_tuple(self):
        run = obs(7, {"r0": ROWS}, order=["a", "b"])
        assert run.order == ("a", "b")
