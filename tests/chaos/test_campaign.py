"""The audit campaign: acceptance assertions on the smoke sweep."""

from __future__ import annotations

import functools

import pytest

from repro.chaos import (
    audit_campaign,
    campaign_is_sound,
    default_schedules,
    demonstrated_anomalies,
    harness_for,
    render_audit,
)
from repro.chaos.oracle import ObservedLabel
from repro.errors import SimulationError

SEEDS = (7, 11)


@functools.lru_cache(maxsize=None)
def smoke_report():
    return audit_campaign(smoke=True, seeds=SEEDS)


def test_campaign_covers_the_required_grid():
    """>= 3 apps x >= 2 strategies x >= 3 fault schedules, several seeds."""
    report = smoke_report()
    apps = {result.params["app"] for result in report}
    assert {"wordcount", "adnet", "kvs"} <= apps
    for app in apps:
        rows = report.select(app=app)
        strategies = {r.params["strategy"] for r in rows}
        schedules = {r.params["schedule"] for r in rows}
        assert len(strategies) >= 2, app
        assert len(schedules) >= 3, app
    assert all(result["runs"] == len(SEEDS) for result in report)


def test_campaign_is_sound():
    """Every cell observes within its predicted Figure 8 label."""
    report = smoke_report()
    assert campaign_is_sound(report), render_audit(report, evidence=True)


def test_coordinated_cells_stay_within_async():
    """The synthesized coordination makes the anomalies impossible."""
    report = smoke_report()
    for result in report:
        if result["coordinated"]:
            assert result["observed_severity"] <= 2, (
                result.name,
                result["observed"],
                result["evidence"],
            )


def test_uncoordinated_anomalies_are_demonstrated():
    """Remove the coordination and the predicted anomalies actually occur."""
    anomalies = demonstrated_anomalies(smoke_report())
    assert any(
        name.startswith("wordcount/eager") and label == "Run"
        for name, label in anomalies.items()
    ), anomalies
    assert any(
        name.startswith("kvs/uncoordinated") and label == "Diverge"
        for name, label in anomalies.items()
    ), anomalies


def test_predictions_match_the_paper_figure8_story():
    report = smoke_report()
    predicted = {
        (r.params["app"], r.params["strategy"]): r["predicted"] for r in report
    }
    assert predicted[("wordcount", "sealed")] == "Async"
    assert predicted[("wordcount", "eager")] == "Run"
    assert predicted[("adnet", "uncoordinated")] == "Diverge"
    assert predicted[("adnet", "seal")] == "Async"
    assert predicted[("kvs", "uncoordinated")] == "Diverge"
    assert predicted[("kvs", "sealed")] == "Async"


def test_evidence_accompanies_every_anomalous_cell():
    for result in smoke_report():
        if result["observed_severity"] > ObservedLabel.EXACT.severity:
            assert result["evidence"], result.name


def test_schedule_subset_restricts_the_sweep():
    report = audit_campaign(
        ("kvs",), smoke=True, seeds=(7,), schedules=("baseline",)
    )
    assert {r.params["schedule"] for r in report} == {"baseline"}
    assert len(report) == 2  # one per strategy


def test_render_audit_summarizes():
    text = render_audit(smoke_report())
    assert "observed" in text and "predicted" in text
    assert "sound: all" in text
    assert "anomalies demonstrated without coordination:" in text


def test_default_schedules_exposed_per_app():
    names = [s.name for s in default_schedules("wordcount", smoke=True)]
    assert "baseline" in names and "crash-restart" in names
    with pytest.raises(SimulationError):
        harness_for("nope")


def test_unknown_schedule_name_is_an_error():
    harness = harness_for("kvs", smoke=True)
    with pytest.raises(SimulationError):
        harness.schedule_named("meteor-strike")


def test_cells_carry_the_registering_module_for_pool_workers():
    """A fresh pool worker only auto-imports the builtin catalog, so each
    cell records the module whose import registers its app."""
    report = audit_campaign(("kvs",), smoke=True, seeds=(7,), schedules=("baseline",))
    assert all(r.params["app_module"] == "repro.apps.kvs" for r in report)
