"""The audit campaign: acceptance assertions on the smoke sweep."""

from __future__ import annotations

import functools

import pytest

from repro.chaos import (
    audit_campaign,
    campaign_is_sound,
    campaign_tightness,
    default_schedules,
    demonstrated_anomalies,
    harness_for,
    matrix_apps,
    matrix_is_expected,
    matrix_summary,
    render_audit,
    render_matrix,
)
from repro.chaos.oracle import ObservedLabel
from repro.errors import SimulationError

SEEDS = (7, 11)


@functools.lru_cache(maxsize=None)
def smoke_report():
    return audit_campaign(smoke=True, seeds=SEEDS)


def test_campaign_covers_the_required_grid():
    """>= 3 apps x >= 2 strategies x >= 3 fault schedules, several seeds."""
    report = smoke_report()
    apps = {result.params["app"] for result in report}
    assert {"wordcount", "adnet", "kvs"} <= apps
    # the Figure 6 query apps ride in the default sweep too
    assert set(matrix_apps()) <= apps
    for app in apps:
        rows = report.select(app=app)
        strategies = {r.params["strategy"] for r in rows}
        schedules = {r.params["schedule"] for r in rows}
        assert len(strategies) >= 2, app
        assert len(schedules) >= 3, app
    assert all(result["runs"] == len(SEEDS) for result in report)


def test_ordered_strategy_swept_for_sequencer_apps():
    report = smoke_report()
    for app in ("adnet", "kvs", *matrix_apps()):
        strategies = {r.params["strategy"] for r in report.select(app=app)}
        assert "ordered" in strategies, app


def test_campaign_is_sound():
    """Every cell observes within its predicted Figure 8 label."""
    report = smoke_report()
    assert campaign_is_sound(report), render_audit(report, evidence=True)


def test_coordinated_cells_stay_within_async():
    """The synthesized coordination makes the anomalies impossible."""
    report = smoke_report()
    for result in report:
        if result["coordinated"]:
            assert result["observed_severity"] <= 2, (
                result.name,
                result["observed"],
                result["evidence"],
            )


def test_uncoordinated_anomalies_are_demonstrated():
    """Remove the coordination and the predicted anomalies actually occur."""
    anomalies = demonstrated_anomalies(smoke_report())
    assert any(
        name.startswith("wordcount/eager") and label == "Run"
        for name, label in anomalies.items()
    ), anomalies
    assert any(
        name.startswith("kvs/uncoordinated") and label == "Diverge"
        for name, label in anomalies.items()
    ), anomalies


def test_predictions_match_the_paper_figure8_story():
    report = smoke_report()
    predicted = {
        (r.params["app"], r.params["strategy"]): r["predicted"] for r in report
    }
    assert predicted[("wordcount", "sealed")] == "Async"
    assert predicted[("wordcount", "eager")] == "Run"
    assert predicted[("adnet", "uncoordinated")] == "Diverge"
    assert predicted[("adnet", "seal")] == "Async"
    assert predicted[("kvs", "uncoordinated")] == "Diverge"
    assert predicted[("kvs", "sealed")] == "Async"


def test_evidence_accompanies_every_anomalous_cell():
    for result in smoke_report():
        if result["observed_severity"] > ObservedLabel.EXACT.severity:
            assert result["evidence"], result.name


class TestTightness:
    """Per-cell tightness: observed == predicted, not merely <=."""

    def test_every_cell_carries_the_metric(self):
        for result in smoke_report():
            assert isinstance(result["tight"], bool), result.name
            assert result["tight"] == (
                result["observed_severity"] == result["predicted_severity"]
            ), result.name

    def test_campaign_tightness_counts_cells(self):
        report = smoke_report()
        tight, total = campaign_tightness(report)
        assert total == len(report)
        assert tight == sum(1 for r in report if r["tight"])
        # the labels are attained somewhere: the eager word count lives
        # exactly at Run, the uncoordinated KVS exactly at Diverge, and
        # the ordered KVS exactly at Async
        assert any(
            r["tight"] for r in report.select(app="wordcount", strategy="eager")
        )
        assert any(
            r["tight"] for r in report.select(app="kvs", strategy="uncoordinated")
        )
        assert any(
            r["tight"] for r in report.select(app="kvs", strategy="ordered")
        )

    def test_render_audit_reports_tightness(self):
        text = render_audit(smoke_report())
        tight, total = campaign_tightness(smoke_report())
        assert f"tightness: {tight}/{total} cells" in text

    def test_audit_to_dict_serializes_tightness(self):
        from repro.core.report import audit_to_dict

        payload = audit_to_dict(smoke_report())
        tight, total = campaign_tightness(smoke_report())
        assert payload["summary"]["tight_cells"] == tight
        assert payload["summary"]["cells"] == total
        assert payload["summary"]["sound"] is True
        assert all("tight" in cell for cell in payload["cells"])
        import json

        json.dumps(payload)  # JSON-able end to end


class TestQueryMatrix:
    """The Figure 6 matrix folded out of the audit report."""

    def test_matrix_summary_covers_the_grid(self):
        summary = matrix_summary(smoke_report())
        queries = {q for q, _ in summary}
        strategies = {s for _, s in summary}
        assert queries == {"THRESH", "POOR", "WINDOW", "CAMPAIGN"}
        assert strategies == {"uncoordinated", "sealed", "ordered"}
        for cell in summary.values():
            assert cell["cells"] >= 4  # schedules per pair

    def test_matrix_reproduces_figure6(self):
        report = smoke_report()
        assert matrix_is_expected(report), render_matrix(report)
        summary = matrix_summary(report)
        assert summary[("THRESH", "uncoordinated")]["consistent"]
        for query in ("POOR", "WINDOW", "CAMPAIGN"):
            assert not summary[(query, "uncoordinated")]["consistent"], query
            assert summary[(query, "sealed")]["consistent"], query
            assert summary[(query, "ordered")]["consistent"], query

    def test_render_matrix_grid(self):
        text = render_matrix(smoke_report())
        assert "THRESH" in text and "ordered" in text
        assert "matrix matches Figure 6" in text

    def test_matrix_summary_ignores_non_matrix_apps(self):
        report = audit_campaign(("kvs",), smoke=True, seeds=(7,))
        assert matrix_summary(report) == {}
        assert not matrix_is_expected(report)
        assert "no query-matrix cells" in render_matrix(report)


def test_schedule_subset_restricts_the_sweep():
    report = audit_campaign(
        ("kvs",), smoke=True, seeds=(7,), schedules=("baseline",)
    )
    assert {r.params["schedule"] for r in report} == {"baseline"}
    assert len(report) == 3  # one per strategy


def test_render_audit_summarizes():
    text = render_audit(smoke_report())
    assert "observed" in text and "predicted" in text
    assert "sound: all" in text
    assert "anomalies demonstrated without coordination:" in text


def test_default_schedules_exposed_per_app():
    names = [s.name for s in default_schedules("wordcount", smoke=True)]
    assert "baseline" in names and "crash-restart" in names
    with pytest.raises(SimulationError):
        harness_for("nope")


def test_unknown_schedule_name_is_an_error():
    harness = harness_for("kvs", smoke=True)
    with pytest.raises(SimulationError):
        harness.schedule_named("meteor-strike")


def test_cells_carry_the_registering_module_for_pool_workers():
    """A fresh pool worker only auto-imports the builtin catalog, so each
    cell records the module whose import registers its app."""
    report = audit_campaign(("kvs",), smoke=True, seeds=(7,), schedules=("baseline",))
    assert all(r.params["app_module"] == "repro.apps.kvs" for r in report)


class TestEnvelopeStatus:
    """The three-way cell taxonomy: sound / unsound / out-of-envelope."""

    def test_default_sweep_is_entirely_in_envelope(self):
        for result in smoke_report():
            assert result["in_envelope"], result.name
            assert result["envelope_violations"] == [], result.name
            assert result["status"] in ("sound", "unsound"), result.name
            assert result["status"] == (
                "sound" if result["sound"] else "unsound"
            ), result.name

    def test_out_of_envelope_schedule_withholds_the_verdict(self):
        from repro.chaos.campaign import _cell_metrics
        from repro.chaos.schedule import loss_burst, schedule_to_dict

        # adnet's order-only envelope excludes loss: the cell runs, but
        # its anomaly (if any) is out-of-envelope, never unsound
        metrics = _cell_metrics(
            app="adnet",
            strategy="uncoordinated",
            schedule="loss-burst",
            smoke=True,
            seeds=[7],
            schedule_spec=schedule_to_dict(loss_burst()),
        )
        assert metrics["status"] == "out-of-envelope"
        assert not metrics["in_envelope"]
        assert any("loss" in line for line in metrics["envelope_violations"])

    def test_out_of_envelope_cells_never_count_as_unsound(self):
        from repro.bench import BenchReport, ScenarioResult
        from repro.chaos import (
            cell_status_of,
            out_of_envelope_cells,
        )
        from repro.core.report import audit_to_dict

        def cell(name, *, sound, violations):
            return ScenarioResult(
                name,
                {"app": "x", "strategy": "s", "schedule": name},
                {
                    "predicted": "Async",
                    "predicted_severity": 2,
                    "observed": "Inst" if not sound else "Async",
                    "observed_severity": 4 if not sound else 2,
                    "sound": sound,
                    "status": "out-of-envelope" if violations else (
                        "sound" if sound else "unsound"
                    ),
                    "in_envelope": not violations,
                    "envelope_violations": list(violations),
                    "tight": False,
                    "consistent": sound,
                    "coordinated": False,
                    "evidence": [],
                },
                0.0,
            )

        report = BenchReport(
            "t",
            [
                cell("a", sound=True, violations=()),
                cell("b", sound=False, violations=("loss outside",)),
            ],
        )
        assert campaign_is_sound(report)  # b is excluded, not unsound
        assert cell_status_of(report.row("b")) == "out-of-envelope"
        assert out_of_envelope_cells(report) == {"b": ["loss outside"]}
        payload = audit_to_dict(report)
        assert payload["summary"]["sound"] is True
        assert payload["summary"]["unsound_cells"] == 0
        assert payload["summary"]["out_of_envelope"] == 1
        text = render_audit(report)
        assert "out-of-envelope cells (1, no verdict): b" in text
        assert "all 1 in-envelope cells" in text

    def test_status_falls_back_to_the_sound_bit_for_old_reports(self):
        from repro.bench import ScenarioResult
        from repro.chaos import cell_status_of

        legacy = ScenarioResult("old", {}, {"sound": False}, 0.0)
        assert cell_status_of(legacy) == "unsound"


class TestDuplicateScheduleNames:
    """Two distinct schedules sharing a name must not collide."""

    def test_same_named_distinct_schedules_get_digest_suffixed_cells(self):
        import dataclasses

        from repro.api import get_app
        from repro.chaos.schedule import loss_burst

        app = get_app("wordcount")
        original = app.audit_spec
        # two *different* loss bursts, both named "loss-burst"
        doubled = dataclasses.replace(
            original,
            schedules=lambda smoke: (
                loss_burst(drop_prob=0.2),
                loss_burst(drop_prob=0.6),
            ),
        )
        app.audit_spec = doubled
        try:
            report = audit_campaign(
                ("wordcount",), smoke=True, seeds=(7,)
            )
        finally:
            app.audit_spec = original
        names = [r.name for r in report]
        assert len(names) == len(set(names)) == 4  # 2 strategies x 2 cells
        assert all("#" in name for name in names)
        # the two cells of one strategy really ran different schedules
        eager = report.select(strategy="eager")
        probs = {
            r.params["schedule_spec"]["faults"][0]["drop_prob"] for r in eager
        }
        assert probs == {0.2, 0.6}

    def test_unique_names_keep_the_plain_cell_format(self):
        report = audit_campaign(
            ("kvs",), smoke=True, seeds=(7,), schedules=("baseline",)
        )
        assert all("#" not in r.name for r in report)
        assert all("schedule_spec" not in r.params for r in report)
