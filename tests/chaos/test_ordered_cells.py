"""Differential tests: ordered vs sealed audit cells, same seeds/schedules.

The ordering strategy's contract, checked against the seal strategy on
identical (workload, seed, schedule) cells:

* ordered cells never observe ``Diverge``/``Inst`` (replica agreement via
  state-machine replication) nor ``Run`` (cross-run comparison is
  conditioned on each run's recorded sequencer order);
* the recorded order really is the decision log: replaying it through a
  pure fold reproduces every replica's committed state exactly (KVS), and
  the query apps' committed tables equal ground truth under any order;
* sealed cells on the same seeds are just as consistent — the two
  mechanisms agree on the verdict while only the ordered one pays the
  sequencer.
"""

from __future__ import annotations

import pytest

from repro.chaos import harness_for
from repro.chaos.oracle import ObservedLabel, classify_runs

SEEDS = (7, 11)

# (app, schedules): the reorder/dup envelope of the reporting apps, the
# reorder/partition envelope of the KVS
CELLS = [
    ("q-campaign", ("reorder-burst", "dup-burst")),
    ("q-poor", ("reorder-burst", "dup-burst")),
    ("kvs", ("reorder-burst", "split-link")),
]


def observations(app, strategy, schedule_name, seeds=SEEDS):
    harness = harness_for(app, smoke=True)
    schedule = harness.schedule_named(schedule_name)
    return [harness.observe(strategy, schedule, seed) for seed in seeds]


@pytest.mark.parametrize("app,schedules", CELLS)
def test_ordered_never_observes_diverge_or_run(app, schedules):
    for name in schedules:
        verdict = classify_runs(observations(app, "ordered", name))
        assert verdict.observed not in (
            ObservedLabel.DIVERGE,
            ObservedLabel.INST,
            ObservedLabel.RUN,
        ), (app, name, verdict.evidence)
        assert verdict.observed.severity <= ObservedLabel.ASYNC.severity


@pytest.mark.parametrize("app,schedules", CELLS)
def test_sealed_matches_ordered_on_identical_cells(app, schedules):
    sealed_name = "sealed" if app != "adnet" else "seal"
    for name in schedules:
        sealed = classify_runs(observations(app, sealed_name, name))
        ordered = classify_runs(observations(app, "ordered", name))
        assert sealed.observed.severity <= ObservedLabel.ASYNC.severity
        assert ordered.observed.severity <= ObservedLabel.ASYNC.severity


@pytest.mark.parametrize("app,schedules", CELLS)
def test_only_ordered_cells_record_an_order(app, schedules):
    sealed_name = "sealed" if app != "adnet" else "seal"
    for name in schedules:
        for obs in observations(app, "ordered", name):
            assert obs.order, (app, name)
        for obs in observations(app, sealed_name, name):
            assert obs.order is None, (app, name)


def test_each_seed_records_a_different_order():
    """The sequencer picks a genuinely different total order per run —
    the reason the naive cross-run comparison would misfire."""
    runs = observations("kvs", "ordered", "reorder-burst", seeds=(7, 11, 13))
    orders = [obs.order for obs in runs]
    assert len(set(orders)) == len(orders)
    # same submissions, different interleavings
    assert len({frozenset(order) for order in orders}) == 1


def _replay_kvs(order):
    """Pure replay of the decision log: LWW winners fold, gets answered
    against the current winner — the deterministic function the recorded
    order makes every replica compute."""
    winners: dict = {}
    expected = set()
    for kind, row in order:
        if kind == "put":
            key, val, ts = row
            rank = (ts, val)
            if winners.get(key) is None or rank > winners[key]:
                winners[key] = rank
        else:
            reqid, key = row
            if key in winners:
                expected.add((reqid, key, winners[key][1]))
    return frozenset(expected)


def test_kvs_committed_state_is_the_replay_of_the_recorded_order():
    for name in ("baseline", "reorder-burst", "split-link"):
        for obs in observations("kvs", "ordered", name):
            expected = _replay_kvs(obs.order)
            for replica, committed in obs.committed.items():
                assert committed == expected, (name, obs.seed, replica)


def test_query_committed_tables_equal_truth_under_any_order():
    """For the reporting apps the committed state is the input log, so it
    must match ground truth regardless of which order the sequencer
    picked — the per-order half of 'agrees with ground truth'."""
    for name in ("reorder-burst", "dup-burst"):
        for obs in observations("q-campaign", "ordered", name):
            for replica, committed in obs.committed.items():
                assert committed == obs.truth, (name, obs.seed, replica)


def test_ordered_replicas_share_the_emitted_history():
    """State-machine replication: same order, same evaluation points,
    same outputs — even under a reorder burst."""
    for obs in observations("q-poor", "ordered", "reorder-burst"):
        histories = set(obs.emitted.values())
        assert len(histories) == 1, obs.seed
