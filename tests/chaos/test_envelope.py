"""Unit tests for fault envelopes and the three-way cell taxonomy."""

from __future__ import annotations

import pytest

from repro.chaos.envelope import (
    FAULT_KINDS,
    FaultEnvelope,
    cell_status,
    order_only_envelope,
    reliable_sessions_envelope,
    replay_envelope,
    unrestricted_envelope,
)
from repro.chaos.schedule import (
    crash_restart,
    dup_burst,
    loss_burst,
    reorder_burst,
    split_link,
)
from repro.errors import SimulationError


def test_unrestricted_envelope_admits_everything():
    env = unrestricted_envelope()
    everything = (
        crash_restart()
        + loss_burst()
        + dup_burst()
        + reorder_burst()
        + split_link()
    )
    assert env.admits(everything)
    assert env.violations(everything) == ()


def test_disallowed_kind_is_a_violation():
    env = order_only_envelope()
    assert env.admits(reorder_burst() + dup_burst())
    broken = env.violations(loss_burst())
    assert len(broken) == 1
    assert "loss" in broken[0] and "order-only" in broken[0]
    # one line per offending fault
    assert len(env.violations(loss_burst() + crash_restart())) == 2


def test_crash_restart_deadline():
    env = replay_envelope()
    assert env.admits(crash_restart(at=0.15, duration=0.3))
    broken = env.violations(crash_restart(at=0.8, duration=0.5))
    assert len(broken) == 1
    assert "crash-without-restart" in broken[0]
    # no deadline declared -> any crash duration is fine
    lenient = FaultEnvelope("x", frozenset({"crash"}))
    assert lenient.admits(crash_restart(at=0.8, duration=5.0))


def test_probability_ceilings():
    env = FaultEnvelope(
        "lossy", frozenset({"loss", "duplicate"}),
        max_loss_prob=0.3, max_dup_prob=0.5,
    )
    assert env.admits(loss_burst(drop_prob=0.3))
    assert not env.admits(loss_burst(drop_prob=0.31))
    assert not env.admits(dup_burst(dup_prob=0.8))
    assert "ceiling" in env.violations(dup_burst(dup_prob=0.8))[0]


def test_unknown_fault_kind_rejected_at_construction():
    with pytest.raises(SimulationError, match="unknown fault kinds"):
        FaultEnvelope("bad", frozenset({"meteor"}))


def test_envelope_coerces_fault_iterables():
    env = FaultEnvelope("x", {"reorder"})
    assert env.faults == frozenset({"reorder"})


def test_cell_status_taxonomy():
    assert cell_status(True, ()) == "sound"
    assert cell_status(False, ()) == "unsound"
    # out-of-envelope takes precedence over the soundness bit
    assert cell_status(False, ("loss outside",)) == "out-of-envelope"
    assert cell_status(True, ("loss outside",)) == "out-of-envelope"


def test_reliable_sessions_envelope_variants():
    full = reliable_sessions_envelope()
    assert full.faults == frozenset({"reorder", "duplicate", "crash", "partition"})
    assert full.crash_restart_by == 1.0
    crashless = reliable_sessions_envelope(crash=False)
    assert "crash" not in crashless.faults
    assert crashless.crash_restart_by is None


def test_to_dict_is_jsonable():
    import json

    payload = json.loads(json.dumps(replay_envelope().to_dict()))
    assert payload["name"] == "replay"
    assert payload["faults"] == sorted(FAULT_KINDS)
    assert payload["crash_restart_by"] == 1.0


def test_registered_apps_declare_envelopes_their_defaults_satisfy():
    # the declaration-time check in BlazesApp.audit_profile guarantees
    # this, but assert it end-to-end for every registered audit app
    import repro.apps  # noqa: F401  (registers the catalog)
    from repro.chaos.harnesses import audit_apps, harness_for

    for name in audit_apps():
        for smoke in (False, True):
            harness = harness_for(name, smoke=smoke)
            assert harness.envelope is not None, name
            for schedule in harness.schedules:
                assert harness.envelope.admits(schedule), (
                    name,
                    schedule.name,
                    harness.envelope.violations(schedule),
                )


def test_declaring_an_envelope_the_defaults_violate_is_an_api_error():
    import dataclasses

    import repro.apps  # noqa: F401
    from repro.api import get_app
    from repro.errors import ApiError

    # wordcount's default schedules include loss and crash faults, which
    # the order-only envelope forbids: re-declaring its audit profile
    # with that envelope must fail loudly (and leave the app untouched,
    # since validation precedes assignment)
    app = get_app("wordcount")
    original = app.audit_spec
    kwargs = {
        field.name: getattr(original, field.name)
        for field in dataclasses.fields(original)
    }
    kwargs["envelope"] = order_only_envelope()
    with pytest.raises(ApiError, match="violates the declared envelope"):
        app.audit_profile(**kwargs)
    assert app.audit_spec is original
