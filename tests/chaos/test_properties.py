"""Property-based tests: the oracle is deterministic and lattice-monotone."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import harness_for
from repro.chaos.oracle import ObservedLabel, RunObservation, classify_runs

# ----------------------------------------------------------------------
# synthetic observation strategies
# ----------------------------------------------------------------------
rows = st.frozensets(
    st.tuples(st.sampled_from("abcd"), st.integers(0, 3)), max_size=6
)
replica_names = st.sampled_from([("r0",), ("r0", "r1"), ("r0", "r1", "r2")])


@st.composite
def observations(draw, *, min_size=1, max_size=4):
    names = draw(replica_names)
    seeds = draw(
        st.lists(
            st.integers(0, 50),
            min_size=min_size,
            max_size=max_size,
            unique=True,
        )
    )
    truth = draw(st.one_of(st.none(), rows))
    out = []
    for seed in seeds:
        committed = {name: draw(rows) for name in names}
        emitted = {name: draw(rows) for name in names}
        out.append(
            RunObservation(
                seed=seed, committed=committed, emitted=emitted, truth=truth
            )
        )
    return out


class TestOracleProperties:
    @given(observations())
    def test_deterministic_in_observation_set(self, runs):
        first = classify_runs(runs)
        second = classify_runs(list(reversed(runs)))
        assert first == second

    @given(observations(min_size=2))
    def test_permutation_invariant(self, runs):
        rotated = runs[1:] + runs[:1]
        assert classify_runs(runs) == classify_runs(rotated)

    @given(observations(), observations())
    def test_monotone_in_the_figure8_lattice(self, runs, extra):
        """Adding observations can only raise the observed severity."""
        seen = {obs.seed for obs in runs}
        fresh = [obs for obs in extra if obs.seed not in seen]
        before = classify_runs(runs).observed.severity
        after = classify_runs(runs + fresh).observed.severity
        assert after >= before

    @given(observations())
    def test_verdict_is_always_a_figure8_rank(self, runs):
        verdict = classify_runs(runs)
        assert verdict.observed in ObservedLabel
        assert 1 <= verdict.observed.severity <= 5
        # evidence accompanies any verdict above exactly-once
        if verdict.observed is not ObservedLabel.EXACT:
            assert verdict.evidence

    @given(observations(min_size=1, max_size=1))
    def test_single_run_never_reports_cross_run_anomalies(self, runs):
        verdict = classify_runs(runs)
        assert not any("across seeds" in line for line in verdict.evidence)


class TestCampaignDeterminism:
    @settings(deadline=None, max_examples=3)
    @given(st.sampled_from(["sealed", "eager"]), st.sampled_from([7, 23]))
    def test_observation_is_deterministic_in_seed_and_schedule(
        self, strategy, seed
    ):
        """One (strategy, schedule, seed) cell reproduces exactly."""
        harness = harness_for("wordcount", smoke=True)
        schedule = harness.schedule_named("crash-restart")
        first = harness.observe(strategy, schedule, seed)
        second = harness.observe(strategy, schedule, seed)
        assert first == second
        assert classify_runs([first]) == classify_runs([second])
