"""Property-based tests: the oracle is deterministic and lattice-monotone."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import harness_for
from repro.chaos.oracle import ObservedLabel, RunObservation, classify_runs

# ----------------------------------------------------------------------
# synthetic observation strategies
# ----------------------------------------------------------------------
rows = st.frozensets(
    st.tuples(st.sampled_from("abcd"), st.integers(0, 3)), max_size=6
)
replica_names = st.sampled_from([("r0",), ("r0", "r1"), ("r0", "r1", "r2")])

# a small pool of recorded orders, so generated observation sets contain
# both equal-order groups and the unordered (None) group
orders = st.sampled_from([None, ("x", "y"), ("y", "x"), ("z",)])


@st.composite
def observations(draw, *, min_size=1, max_size=4, with_orders=False):
    names = draw(replica_names)
    seeds = draw(
        st.lists(
            st.integers(0, 50),
            min_size=min_size,
            max_size=max_size,
            unique=True,
        )
    )
    truth = draw(st.one_of(st.none(), rows))
    out = []
    for seed in seeds:
        committed = {name: draw(rows) for name in names}
        emitted = {name: draw(rows) for name in names}
        out.append(
            RunObservation(
                seed=seed,
                committed=committed,
                emitted=emitted,
                truth=truth,
                order=draw(orders) if with_orders else None,
            )
        )
    return out


class TestOracleProperties:
    @given(observations())
    def test_deterministic_in_observation_set(self, runs):
        first = classify_runs(runs)
        second = classify_runs(list(reversed(runs)))
        assert first == second

    @given(observations(min_size=2))
    def test_permutation_invariant(self, runs):
        rotated = runs[1:] + runs[:1]
        assert classify_runs(runs) == classify_runs(rotated)

    @given(observations(), observations())
    def test_monotone_in_the_figure8_lattice(self, runs, extra):
        """Adding observations can only raise the observed severity."""
        seen = {obs.seed for obs in runs}
        fresh = [obs for obs in extra if obs.seed not in seen]
        before = classify_runs(runs).observed.severity
        after = classify_runs(runs + fresh).observed.severity
        assert after >= before

    @given(observations())
    def test_verdict_is_always_a_figure8_rank(self, runs):
        verdict = classify_runs(runs)
        assert verdict.observed in ObservedLabel
        assert 1 <= verdict.observed.severity <= 5
        # evidence accompanies any verdict above exactly-once
        if verdict.observed is not ObservedLabel.EXACT:
            assert verdict.evidence

    @given(observations(min_size=1, max_size=1))
    def test_single_run_never_reports_cross_run_anomalies(self, runs):
        verdict = classify_runs(runs)
        assert not any("across seeds" in line for line in verdict.evidence)


class TestOrderConditionedProperties:
    """The order-conditioned oracle keeps the oracle's contract."""

    @given(observations(with_orders=True))
    def test_deterministic_and_permutation_invariant(self, runs):
        assert classify_runs(runs) == classify_runs(list(reversed(runs)))
        rotated = runs[1:] + runs[:1]
        assert classify_runs(runs) == classify_runs(rotated)

    @given(observations(with_orders=True), observations(with_orders=True))
    def test_monotone_in_the_figure8_lattice(self, runs, extra):
        seen = {obs.seed for obs in runs}
        fresh = [obs for obs in extra if obs.seed not in seen]
        before = classify_runs(runs).observed.severity
        after = classify_runs(runs + fresh).observed.severity
        assert after >= before

    @given(observations(with_orders=True))
    def test_invariant_under_relabeling_of_sequencer_orders(self, runs):
        """The verdict uses orders only through their equality partition:
        renaming every distinct order (a bijection) changes nothing."""
        fresh_names = {}

        def relabel(order):
            if order is None:
                return None
            if order not in fresh_names:
                fresh_names[order] = ("relabeled", len(fresh_names))
            return fresh_names[order]

        relabeled = [
            RunObservation(
                seed=obs.seed,
                committed=obs.committed,
                emitted=obs.emitted,
                truth=obs.truth,
                order=relabel(obs.order),
            )
            for obs in runs
        ]
        assert classify_runs(runs) == classify_runs(relabeled)

    @given(observations(min_size=2, max_size=4, with_orders=True))
    def test_dropping_orders_never_lowers_severity(self, runs):
        """Conditioning can only *exempt* comparisons: stripping the
        orders (one big unconditional group) is at least as severe."""
        stripped = [
            RunObservation(
                seed=obs.seed,
                committed=obs.committed,
                emitted=obs.emitted,
                truth=obs.truth,
            )
            for obs in runs
        ]
        conditioned = classify_runs(runs).observed.severity
        unconditional = classify_runs(stripped).observed.severity
        assert unconditional >= conditioned

    @given(observations(with_orders=True))
    def test_all_distinct_orders_report_no_cross_run_anomaly(self, runs):
        distinct = [
            RunObservation(
                seed=obs.seed,
                committed=obs.committed,
                emitted=obs.emitted,
                truth=obs.truth,
                order=("unique", index),
            )
            for index, obs in enumerate(runs)
        ]
        verdict = classify_runs(distinct)
        assert not any("across seeds" in line for line in verdict.evidence)


class TestCampaignDeterminism:
    @settings(deadline=None, max_examples=3)
    @given(st.sampled_from(["sealed", "eager"]), st.sampled_from([7, 23]))
    def test_observation_is_deterministic_in_seed_and_schedule(
        self, strategy, seed
    ):
        """One (strategy, schedule, seed) cell reproduces exactly."""
        harness = harness_for("wordcount", smoke=True)
        schedule = harness.schedule_named("crash-restart")
        first = harness.observe(strategy, schedule, seed)
        second = harness.observe(strategy, schedule, seed)
        assert first == second
        assert classify_runs([first]) == classify_runs([second])
