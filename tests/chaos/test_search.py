"""Tests for adaptive chaos search: generator, shrinker, frontier.

The shrinker invariants are property-tested against synthetic predicates
(no simulator in the loop — the shrinker is pure given a predicate); the
engine-backed paths run small smoke campaigns on the real apps.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.schedule import (
    Crash,
    Duplicate,
    FaultSchedule,
    Loss,
    Partition,
    Reorder,
)
from repro.chaos.search import (
    composite_schedule,
    composite_schedules,
    shrink_schedule,
)
from repro.errors import SimulationError

# ----------------------------------------------------------------------
# synthetic fault/schedule strategies (discrete values: no float noise)
# ----------------------------------------------------------------------
_ATS = st.sampled_from([0.0, 0.1, 0.2, 0.3])
_DURS = st.sampled_from([0.1, 0.2, 0.4])
_PROBS = st.sampled_from([0.2, 0.5, 0.8])

faults = st.one_of(
    st.builds(Loss, _ATS, _DURS, _PROBS),
    st.builds(Duplicate, _ATS, _DURS, _PROBS),
    st.builds(Reorder, _ATS, _DURS, st.sampled_from([2.0, 4.0, 8.0])),
    st.builds(Crash, st.just("worker"), st.integers(0, 1), _ATS, _DURS),
)

schedules = st.builds(
    lambda fs: FaultSchedule("synthetic", tuple(fs)),
    st.lists(faults, min_size=1, max_size=6),
)


def _descends_from(shrunk, original) -> bool:
    """Is ``shrunk`` the same fault with an equal-or-smaller window and
    equal-or-lower intensity?  (Same kind, same target, same ``at``.)"""
    if type(shrunk) is not type(original):
        return False
    if shrunk.at != original.at or shrunk.duration > original.duration:
        return False
    weak = {"duration": shrunk.duration}
    if isinstance(shrunk, Loss):
        if shrunk.drop_prob > original.drop_prob:
            return False
        weak["drop_prob"] = shrunk.drop_prob
    elif isinstance(shrunk, Duplicate):
        if shrunk.dup_prob > original.dup_prob:
            return False
        weak["dup_prob"] = shrunk.dup_prob
    elif isinstance(shrunk, Reorder):
        if shrunk.factor > original.factor:
            return False
        weak["factor"] = shrunk.factor
    # all remaining fields (roles, indices, symmetric) must be untouched
    return dataclasses.replace(original, **weak) == shrunk


def _is_weakened_subsequence(minimal, original) -> bool:
    """Every minimal fault maps (order-preserving, injectively) to an
    original fault it descends from — the shrinker only removes and
    weakens, never invents, duplicates, or reorders."""
    position = 0
    for fault in minimal.faults:
        while position < len(original.faults) and not _descends_from(
            fault, original.faults[position]
        ):
            position += 1
        if position == len(original.faults):
            return False
        position += 1
    return True


class TestShrinkerProperties:
    @settings(max_examples=60, deadline=None)
    @given(schedules, st.data())
    def test_culprit_subset_is_recovered_exactly(self, schedule, data):
        # the classic delta-debugging workload: the anomaly needs some
        # subset of the faults; everything else is noise to remove
        mask = data.draw(
            st.lists(
                st.booleans(),
                min_size=len(schedule.faults),
                max_size=len(schedule.faults),
            )
        )
        culprit = [f for f, keep in zip(schedule.faults, mask) if keep]

        def reproduces(candidate):
            pool = list(candidate.faults)
            for fault in culprit:
                if fault in pool:
                    pool.remove(fault)
                else:
                    return False
            return True

        outcome = shrink_schedule(schedule, reproduces, budget=500)
        assert not outcome.exhausted
        assert outcome.one_minimal
        assert reproduces(outcome.schedule)  # verdict reproduced
        # exact-match predicate: bisection can't weaken a culprit fault,
        # and every non-culprit fault is removable -> exactly the culprit
        assert sorted(outcome.schedule.faults, key=repr) == sorted(
            culprit, key=repr
        )
        assert _is_weakened_subsequence(outcome.schedule, schedule)

    @settings(max_examples=60, deadline=None)
    @given(schedules)
    def test_kind_predicate_yields_one_minimal_descendant(self, schedule):
        # a weakening-tolerant predicate: the anomaly needs *some* fault
        # of the first fault's kind, however weak -> bisection engages
        kind = type(schedule.faults[0])

        def reproduces(candidate):
            return any(isinstance(f, kind) for f in candidate.faults)

        outcome = shrink_schedule(schedule, reproduces, budget=500)
        assert not outcome.exhausted
        assert outcome.one_minimal
        assert reproduces(outcome.schedule)
        assert len(outcome.schedule.faults) == 1
        assert _is_weakened_subsequence(outcome.schedule, schedule)
        # 1-minimality, checked directly: dropping the last fault fails
        assert not reproduces(FaultSchedule(schedule.name, ()))

    @settings(max_examples=30, deadline=None)
    @given(schedules)
    def test_shrink_never_grows_and_respects_budget(self, schedule):
        calls = {"n": 0}

        def reproduces(candidate):
            calls["n"] += 1
            return True  # everything reproduces: shrink to nothing

        outcome = shrink_schedule(schedule, reproduces, budget=10)
        assert outcome.trials == calls["n"]
        # soft cap: a phase checks before each batch, so the count may
        # overshoot by at most one batch (= len(faults) candidates)
        assert outcome.trials <= 10 + len(schedule.faults)
        assert len(outcome.schedule.faults) <= len(schedule.faults)
        assert _is_weakened_subsequence(outcome.schedule, schedule)


class TestShrinkerEdges:
    def test_zero_budget_returns_original_unclaimed(self):
        schedule = FaultSchedule("s", (Loss(0.1, 0.4, 0.8),))
        outcome = shrink_schedule(schedule, lambda s: True, budget=0)
        assert outcome.schedule == schedule
        assert outcome.trials == 0
        assert outcome.exhausted
        assert not outcome.one_minimal

    def test_bisection_halves_windows_and_intensities(self):
        schedule = FaultSchedule(
            "s", (Reorder(0.0, 0.4, 9.0), Loss(0.1, 0.4, 0.8))
        )

        def reproduces(candidate):
            return any(isinstance(f, Loss) for f in candidate.faults)

        outcome = shrink_schedule(schedule, reproduces, budget=100)
        assert outcome.one_minimal
        (loss,) = outcome.schedule.faults
        assert isinstance(loss, Loss)
        assert loss.at == pytest.approx(0.1)  # windows never move
        assert loss.duration == pytest.approx(0.4 / 8)  # 3 halvings
        assert loss.drop_prob == pytest.approx(0.8 / 8)

    def test_batched_predicate_matches_serial_semantics(self):
        schedule = FaultSchedule(
            "s",
            (Loss(0.1, 0.2, 0.5), Duplicate(0.2, 0.2, 0.5), Loss(0.3, 0.4, 0.8)),
        )

        def reproduces(candidate):
            return sum(isinstance(f, Loss) for f in candidate.faults) >= 1

        serial = shrink_schedule(schedule, reproduces, budget=200)
        batched = shrink_schedule(
            schedule,
            reproduces,
            budget=200,
            reproduces_many=lambda batch: [reproduces(c) for c in batch],
        )
        assert serial.schedule == batched.schedule
        assert serial.trials == batched.trials


class TestCompositeGenerator:
    def test_deterministic_in_seed_and_index(self):
        a = composite_schedule(seed=3, index=2, roles=("worker",))
        b = composite_schedule(seed=3, index=2, roles=("worker",))
        c = composite_schedule(seed=3, index=3, roles=("worker",))
        assert a == b
        assert a != c

    def test_faults_overlap_the_carrier_window(self):
        for index in range(8):
            schedule = composite_schedule(seed=1, index=index, roles=("worker",))
            carrier = schedule.faults[0]
            assert len(schedule.faults) >= 2
            for fault in schedule.faults[1:]:
                assert carrier.at <= fault.at <= carrier.end

    def test_respects_envelope_kinds_and_ceilings(self):
        from repro.chaos.envelope import FaultEnvelope, order_only_envelope

        env = order_only_envelope()
        for schedule in composite_schedules(6, seed=5, envelope=env):
            assert env.admits(schedule)
            assert {type(f) for f in schedule.faults} <= {Reorder, Duplicate}
        capped = FaultEnvelope(
            "capped", frozenset({"loss", "reorder"}), max_loss_prob=0.25
        )
        for schedule in composite_schedules(6, seed=5, envelope=capped):
            assert capped.admits(schedule)

    def test_no_roles_means_no_role_addressed_faults(self):
        for schedule in composite_schedules(6, seed=7, roles=()):
            assert not any(
                isinstance(f, (Crash, Partition)) for f in schedule.faults
            )

    def test_empty_intersection_raises(self):
        from repro.chaos.envelope import FaultEnvelope

        env = FaultEnvelope("crash-only", frozenset({"crash"}))
        with pytest.raises(SimulationError, match="no generatable"):
            composite_schedule(seed=0, envelope=env, roles=())


# ----------------------------------------------------------------------
# engine-backed paths (smoke-sized, wordcount only)
# ----------------------------------------------------------------------
class TestSearchCampaign:
    def test_smoke_search_finds_minimal_reproducing_anomalies(self, tmp_path):
        from repro.chaos.search import (
            render_search,
            search_campaign,
            search_is_sound,
        )
        from repro.exec.cache import CellCache

        payload = search_campaign(
            ["wordcount"],
            smoke=True,
            candidates=2,
            budget=24,
            seed=0,
            jobs=1,
            cache=CellCache(tmp_path / "cache"),
        )
        assert payload["cells"] and len(payload["cells"]) == 2 * 2  # 2 strategies
        assert search_is_sound(payload)  # wordcount's labels are sound
        # the eager strategy's Run anomaly must be found and minimized
        assert payload["findings"], "expected anomalies beyond Async"
        for finding in payload["findings"]:
            assert finding["strategy"] == "eager"
            assert finding["observed"] == "Run"
            assert finding["reproduced"], "minimal schedule must reproduce"
            assert finding["minimal_faults"] <= finding["original_faults"]
        engine = payload["engine"]
        assert engine["cells"] == engine["cache_hits"] + engine["cache_misses"]
        text = render_search(payload)
        assert "search cache:" in text and "minimized anomalies" in text

    def test_search_cells_hit_cache_across_runs(self, tmp_path):
        from repro.chaos.search import search_campaign
        from repro.exec.cache import CellCache

        kwargs = dict(
            smoke=True, candidates=2, budget=24, seed=0, jobs=1
        )
        cold = search_campaign(
            ["wordcount"], cache=CellCache(tmp_path / "cache"), **kwargs
        )
        warm = search_campaign(
            ["wordcount"], cache=CellCache(tmp_path / "cache"), **kwargs
        )
        assert warm["engine"]["hit_rate"] == 1.0
        assert warm["findings"] == cold["findings"]


class TestFrontierCampaign:
    def test_smoke_frontier_on_wordcount(self, tmp_path):
        from repro.chaos.search import frontier_campaign, render_frontier
        from repro.exec.cache import CellCache

        report = frontier_campaign(
            ["wordcount"],
            smoke=True,
            steps=2,
            jobs=1,
            cache=CellCache(tmp_path / "cache"),
        )
        assert {r.name for r in report} == {
            "wordcount/sealed",
            "wordcount/eager",
        }
        sealed = report.row("wordcount/sealed")
        assert sealed["holds"] and sealed["frontier"] is None
        # eager exhibits Run with no faults at all: the frontier floor
        eager = report.row("wordcount/eager")
        assert eager["frontier"] == 0.0 and not eager["holds"]
        for result in report:
            assert result["probes"] >= 2  # both endpoints always probed
            assert result["predicted"]
        assert report.engine is not None
        text = render_frontier(report)
        assert "severity frontier" in text and "holds" in text
