"""Unit tests for the fault-schedule DSL."""

from __future__ import annotations

import pytest

from repro.chaos.schedule import (
    Crash,
    Duplicate,
    FaultSchedule,
    Loss,
    Partition,
    Reorder,
    baseline,
    crash_restart,
    dup_burst,
    loss_burst,
    reorder_burst,
    split_link,
)
from repro.errors import SimulationError
from repro.sim import FailureInjector, Network, Process, Simulator


class Echo(Process):
    def __init__(self, name):
        super().__init__(name)
        self.got = []

    def recv(self, msg):
        self.got.append(msg.payload)


def build_injector():
    sim = Simulator(seed=1)
    network = Network(sim)
    for name in ("w0", "w1", "s0"):
        network.register(Echo(name))
    return sim, network, FailureInjector(network)


def resolve(role, index):
    return {"worker": ["w0", "w1"], "source": ["s0"]}[role][index]


def test_schedules_compose_with_plus():
    combined = crash_restart() + loss_burst()
    assert combined.name == "crash-restart+loss-burst"
    assert len(combined.faults) == 2
    assert isinstance(combined.faults[0], Crash)
    assert isinstance(combined.faults[1], Loss)


def test_scaled_multiplies_times_and_durations():
    schedule = FaultSchedule("s", (Crash("worker", 0, at=0.2, duration=0.5),))
    scaled = schedule.scaled(10.0)
    fault = scaled.faults[0]
    assert fault.at == pytest.approx(2.0)
    assert fault.duration == pytest.approx(5.0)
    # scaling is a pure transform: the original is untouched
    assert schedule.faults[0].at == pytest.approx(0.2)


def test_scaled_rejects_nonpositive_factor():
    with pytest.raises(SimulationError):
        baseline().scaled(0.0)


def test_shifted_delays_every_fault():
    schedule = loss_burst(at=0.1, duration=0.2) + dup_burst(at=0.3, duration=0.1)
    shifted = schedule.shifted(1.0)
    assert [f.at for f in shifted.faults] == [pytest.approx(1.1), pytest.approx(1.3)]
    assert [f.duration for f in shifted.faults] == [
        pytest.approx(0.2),
        pytest.approx(0.1),
    ]


def test_horizon_and_roles():
    schedule = (
        crash_restart("worker", 1, at=0.1, duration=0.4)
        + split_link("source", 0, "worker", 0, at=0.2, duration=0.2)
        + reorder_burst(at=0.0, duration=0.9, factor=4.0)
    )
    assert schedule.horizon == pytest.approx(0.9)
    assert schedule.roles == frozenset({"worker", "source"})
    assert baseline().horizon == 0.0
    assert baseline().roles == frozenset()


def test_apply_compiles_onto_injector():
    sim, network, injector = build_injector()
    schedule = (
        crash_restart("worker", 1, at=1.0, duration=1.0)
        + split_link("source", 0, "worker", 0, at=1.0, duration=1.0)
    )
    schedule.apply(injector, resolve)
    sim.run()
    assert ("w1" in {name for _t, name in injector.crashes})
    assert any((src, dst) == ("s0", "w0") for _t, src, dst in injector.partitions)
    assert injector.recoveries and injector.heals


def test_apply_baseline_is_a_noop():
    sim, network, injector = build_injector()
    baseline().apply(injector, resolve)
    assert sim.pending == 0


def test_unknown_role_is_an_error_at_apply_time():
    sim, network, injector = build_injector()
    schedule = crash_restart("replica", 0)
    with pytest.raises(KeyError):
        schedule.apply(injector, resolve)


def test_describe_lists_faults():
    text = (loss_burst() + dup_burst()).describe()
    assert "loss-burst+dup-burst" in text
    assert "Loss" in text and "Duplicate" in text
    assert baseline().describe().endswith("no faults")


def test_every_primitive_round_trips_through_rescale():
    faults = (
        Crash("worker", 0, 0.1, 0.2),
        Loss(0.1, 0.2, 0.5),
        Duplicate(0.1, 0.2, 0.5),
        Partition("source", 0, "worker", 1, 0.1, 0.2),
        Reorder(0.1, 0.2, 8.0),
    )
    for fault in faults:
        back = fault.rescaled(2.0, 0.0).rescaled(0.5, 0.0)
        assert back.at == pytest.approx(fault.at)
        assert back.duration == pytest.approx(fault.duration)
        assert back.end == pytest.approx(fault.end)


# ----------------------------------------------------------------------
# construction-time validation (regression: negative shift offsets)
# ----------------------------------------------------------------------
def test_shifted_with_negative_offset_moves_faults_earlier():
    schedule = loss_burst(at=0.3, duration=0.2).shifted(-0.1)
    assert schedule.faults[0].at == pytest.approx(0.2)


def test_shifted_past_zero_raises_at_construction():
    # regression: this used to mint a Loss with at=-0.1, which the sim
    # kernels rejected only at arm time and the socket backend silently
    # clamped; the DSL now refuses to build the fault at all
    with pytest.raises(SimulationError, match="before t=0"):
        loss_burst(at=0.1, duration=0.2).shifted(-0.2)


def test_rescaled_negative_offset_raises_per_fault():
    with pytest.raises(SimulationError, match="before t=0"):
        Crash("worker", 0, 0.05, 0.2).rescaled(1.0, -0.1)


def test_negative_windows_raise_for_every_primitive():
    with pytest.raises(SimulationError):
        Crash("worker", 0, -0.1, 0.2)
    with pytest.raises(SimulationError):
        Loss(0.1, -0.2, 0.5)
    with pytest.raises(SimulationError):
        Partition("a", 0, "b", 0, -1e-9, 0.1)
    with pytest.raises(SimulationError):
        Reorder(0.1, 0.2, -1.0)


def test_probability_faults_validate_their_probability():
    with pytest.raises(SimulationError, match="drop_prob"):
        Loss(0.1, 0.2, 1.5)
    with pytest.raises(SimulationError, match="dup_prob"):
        Duplicate(0.1, 0.2, -0.5)


# ----------------------------------------------------------------------
# intensity scaling (the severity-frontier axis)
# ----------------------------------------------------------------------
def test_with_intensity_endpoints():
    schedule = (
        crash_restart(at=0.1, duration=0.4)
        + loss_burst(drop_prob=0.4)
        + reorder_burst(factor=8.0)
    )
    full = schedule.with_intensity(1.0)
    assert [f.end for f in full.faults] == [
        pytest.approx(f.end) for f in schedule.faults
    ]
    # lam=0 melts every fault to a no-op, which is dropped: the empty
    # schedule is indistinguishable from baseline
    assert schedule.with_intensity(0.0).faults == ()


def test_with_intensity_scales_each_kind_on_its_own_axis():
    schedule = FaultSchedule(
        "mix",
        (
            Crash("worker", 0, 0.1, 0.4),
            Loss(0.1, 0.2, 0.8),
            Duplicate(0.1, 0.2, 0.6),
            Partition("a", 0, "b", 0, 0.1, 0.4),
            Reorder(0.1, 0.2, 9.0),
        ),
    )
    half = schedule.with_intensity(0.5)
    crash, loss, dup, part, reorder = half.faults
    assert crash.duration == pytest.approx(0.2)
    assert crash.at == pytest.approx(0.1)  # windows never move
    assert loss.drop_prob == pytest.approx(0.4)
    assert dup.dup_prob == pytest.approx(0.3)
    assert part.duration == pytest.approx(0.2)
    assert reorder.factor == pytest.approx(5.0)  # toward neutral 1, not 0


def test_with_intensity_rejects_out_of_range():
    with pytest.raises(SimulationError):
        loss_burst().with_intensity(1.5)
    with pytest.raises(SimulationError):
        loss_burst().with_intensity(-0.1)


# ----------------------------------------------------------------------
# dict round-trip (how searched schedules travel through JSON params)
# ----------------------------------------------------------------------
def test_schedule_round_trips_through_dict():
    import json

    from repro.chaos.schedule import schedule_from_dict, schedule_to_dict

    schedule = (
        crash_restart("worker", 1, at=0.1, duration=0.4)
        + split_link("source", 0, "worker", 0, at=0.2, duration=0.2)
        + loss_burst()
        + dup_burst()
        + reorder_burst()
    )
    data = json.loads(json.dumps(schedule_to_dict(schedule)))
    back = schedule_from_dict(data)
    assert back == schedule


def test_fault_from_dict_rejects_unknown_kind():
    from repro.chaos.schedule import fault_from_dict

    with pytest.raises(SimulationError, match="unknown fault kind"):
        fault_from_dict({"kind": "meteor", "at": 0.1, "duration": 0.2})
